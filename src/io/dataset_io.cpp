#include "io/dataset_io.hpp"

#include <algorithm>
#include <charconv>
#include <filesystem>
#include <map>
#include <unordered_set>
#include <utility>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/csv.hpp"

namespace cn::io {

namespace {

std::optional<std::int64_t> to_i64(const std::string& s) {
  std::int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

std::optional<std::uint64_t> to_u64(const std::string& s) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

// ---------------------------------------------------------------------------
// Export: atomic tmp-file writers.
// ---------------------------------------------------------------------------

bool set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

/// A CsvWriter that streams to `<path>.tmp`; the temporary is removed on
/// destruction unless commit_exports() renamed it into place.
struct TmpCsv {
  std::string final_path;
  std::string tmp_path;
  CsvWriter writer;
  bool committed = false;

  explicit TmpCsv(std::string path)
      : final_path(std::move(path)),
        tmp_path(final_path + ".tmp"),
        writer(tmp_path) {}

  ~TmpCsv() {
    if (!committed) {
      std::error_code ec;
      std::filesystem::remove(tmp_path, ec);
    }
  }
};

/// Flushes every writer, verifies no write failed (disk full surfaces
/// here at the latest), then renames all temporaries into place. On any
/// failure the temporaries are cleaned up by ~TmpCsv and the final paths
/// are left untouched.
bool commit_exports(std::initializer_list<TmpCsv*> files, std::string* error) {
  for (TmpCsv* f : files) {
    if (!f->writer.close()) {
      return set_error(error, "write to " + f->tmp_path +
                                  " failed (disk full or I/O error)");
    }
  }
  for (TmpCsv* f : files) {
    std::error_code ec;
    std::filesystem::rename(f->tmp_path, f->final_path, ec);
    if (ec) {
      return set_error(error, "rename " + f->tmp_path + " -> " + f->final_path +
                                  ": " + ec.message());
    }
    f->committed = true;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Import: policy-aware row consumption.
// ---------------------------------------------------------------------------

/// Shared defect-recording state for one import.
struct Loader {
  explicit Loader(LoadPolicy p) { report.policy = p; }

  LoadReport report;
  bool fatal = false;

  enum class Fix {
    kSkipRow,    ///< lenient drops the row
    kRepairRow,  ///< lenient keeps the row after a fix
    kNone,       ///< bookkeeping only (whole-file defects)
  };

  /// Records a defect. Returns true when the caller may continue
  /// (lenient); false aborts the load (strict).
  bool defect(LoadErrorKind kind, const std::string& file, std::size_t line,
              std::string detail, Fix fix = Fix::kSkipRow) {
    LoadError e{kind, file, line, std::move(detail), false};
    if (report.policy == LoadPolicy::kStrict) {
      report.errors.push_back(std::move(e));
      report.ok = false;
      fatal = true;
      return false;
    }
    e.repaired = fix != Fix::kNone;
    report.errors.push_back(std::move(e));
    if (fix == Fix::kSkipRow) ++report.rows_skipped;
    if (fix == Fix::kRepairRow) ++report.rows_repaired;
    return true;
  }

  /// Whole-file defect that no policy can recover from (missing file).
  void fatal_defect(LoadErrorKind kind, const std::string& file,
                    std::string detail) {
    report.errors.push_back({kind, file, 0, std::move(detail), false});
    report.ok = false;
    fatal = true;
  }
};

/// Ingest telemetry (DESIGN.md §10), recorded ONCE per import from the
/// finished LoadReport — the per-row parse loops stay untouched. All
/// rejected.* counters are interned eagerly so the exported key set is
/// identical whether or not a given defect kind occurred.
struct IngestMetrics {
  obs::Counter imports{"io.ingest.imports"};
  obs::Counter imports_failed{"io.ingest.imports_failed"};
  obs::Counter rows_read{"io.ingest.rows_read"};
  obs::Counter rows_skipped{"io.ingest.rows_skipped"};
  obs::Counter rows_repaired{"io.ingest.rows_repaired"};
  std::vector<obs::Counter> rejected;  ///< indexed by LoadErrorKind

  IngestMetrics() {
    constexpr LoadErrorKind kKinds[] = {
        LoadErrorKind::kFileOpen,          LoadErrorKind::kMissingHeader,
        LoadErrorKind::kBadFieldCount,     LoadErrorKind::kBadNumber,
        LoadErrorKind::kBadTxid,           LoadErrorKind::kDuplicateHeight,
        LoadErrorKind::kDuplicateTxPosition, LoadErrorKind::kDuplicateTxid,
        LoadErrorKind::kOutOfOrderRow,     LoadErrorKind::kTxCountMismatch,
        LoadErrorKind::kBadPositionSequence, LoadErrorKind::kMissingBlockRow,
        LoadErrorKind::kUnterminatedQuote,   LoadErrorKind::kBadMagic,
        LoadErrorKind::kUnsupportedVersion,  LoadErrorKind::kTruncatedFile,
        LoadErrorKind::kSectionChecksum,     LoadErrorKind::kSectionLayout,
        LoadErrorKind::kMissingSection,      LoadErrorKind::kMmapFailed};
    rejected.reserve(std::size(kKinds));
    for (const LoadErrorKind kind : kKinds) {
      rejected.emplace_back(std::string("io.ingest.rejected.") +
                            to_string(kind));
    }
  }
};

void record_ingest_metrics(const LoadReport& report) {
  static IngestMetrics* m = new IngestMetrics();  // interned once per process
  m->imports.add();
  if (!report.ok) m->imports_failed.add();
  m->rows_read.add(report.rows_read);
  m->rows_skipped.add(report.rows_skipped);
  m->rows_repaired.add(report.rows_repaired);
  for (const LoadError& e : report.errors) {
    const auto k = static_cast<std::size_t>(e.kind);
    if (k < m->rejected.size()) m->rejected[k].add();
  }
}

}  // namespace

bool export_chain(const btc::Chain& chain, const std::string& dir,
                  std::string* error) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return set_error(error, "create_directories(" + dir + "): " + ec.message());
  }

  TmpCsv blocks(dir + "/blocks.csv");
  TmpCsv txs(dir + "/txs.csv");
  TmpCsv inputs(dir + "/inputs.csv");
  TmpCsv outputs(dir + "/outputs.csv");
  if (!blocks.writer.ok() || !txs.writer.ok() || !inputs.writer.ok() ||
      !outputs.writer.ok()) {
    return set_error(error, "could not open CSV files under " + dir);
  }

  blocks.writer.header({"height", "mined_at", "coinbase_tag", "reward_address",
                        "reward_sat", "tx_count"});
  txs.writer.header({"height", "position", "txid", "issued", "vsize", "fee_sat"});
  inputs.writer.header({"txid", "prev_txid", "prev_vout", "owner"});
  outputs.writer.header({"txid", "to", "value_sat"});

  for (const btc::Block& block : chain.blocks()) {
    blocks.writer.field(block.height()).field(block.mined_at());
    blocks.writer.field(block.coinbase().tag);
    blocks.writer.field(block.coinbase().reward_address.value);
    blocks.writer.field(block.coinbase().reward.value);
    blocks.writer.field(static_cast<std::uint64_t>(block.tx_count()));
    blocks.writer.end_row();

    for (std::size_t i = 0; i < block.txs().size(); ++i) {
      const btc::Transaction& tx = block.txs()[i];
      const std::string id_hex = tx.id().to_hex();
      txs.writer.field(block.height()).field(static_cast<std::uint64_t>(i));
      txs.writer.field(id_hex).field(tx.issued());
      txs.writer.field(static_cast<std::uint64_t>(tx.vsize())).field(tx.fee().value);
      txs.writer.end_row();

      for (const btc::TxInput& in : tx.inputs()) {
        inputs.writer.field(id_hex).field(in.prev_txid.to_hex());
        inputs.writer.field(static_cast<std::uint64_t>(in.prev_vout));
        inputs.writer.field(in.owner.value);
        inputs.writer.end_row();
      }
      for (const btc::TxOutput& out : tx.outputs()) {
        outputs.writer.field(id_hex).field(out.to.value).field(out.value.value);
        outputs.writer.end_row();
      }
    }
  }
  return commit_exports({&blocks, &txs, &inputs, &outputs}, error);
}

LoadResult<btc::Chain> import_chain(const std::string& dir, LoadPolicy policy) {
  return import_chain(dir, policy, nullptr);
}

namespace {

LoadResult<btc::Chain> import_chain_impl(const std::string& dir,
                                         LoadPolicy policy,
                                         btc::AddressTable* addresses) {
  LoadResult<btc::Chain> result;
  Loader ld(policy);
  std::vector<std::string> row;

  // --- blocks.csv --------------------------------------------------------
  struct RawBlock {
    SimTime mined_at = 0;
    btc::Coinbase coinbase;
    std::uint64_t tx_count = 0;
    std::size_t line = 0;        ///< source line, 0 for reconstructions
    bool reconstructed = false;  ///< lenient placeholder for a lost row
  };
  std::map<std::uint64_t, RawBlock> blocks;
  const std::string blocks_path = dir + "/blocks.csv";
  {
    CsvReader in(blocks_path);
    if (!in.ok()) {
      ld.fatal_defect(LoadErrorKind::kFileOpen, blocks_path, "cannot open");
    } else if (!in.next_row(row)) {
      ld.fatal_defect(LoadErrorKind::kMissingHeader, blocks_path, "empty file");
    }
    std::optional<std::uint64_t> last_height;
    while (!ld.fatal && in.next_row(row)) {
      ++ld.report.rows_read;
      const std::size_t line = in.line();
      if (in.truncated()) {
        if (!ld.defect(LoadErrorKind::kUnterminatedQuote, blocks_path, line,
                       "record ends inside a quoted field")) break;
        continue;
      }
      if (row.size() != 6) {
        if (!ld.defect(LoadErrorKind::kBadFieldCount, blocks_path, line,
                       "expected 6 fields, found " + std::to_string(row.size()))) break;
        continue;
      }
      const auto height = to_u64(row[0]);
      const auto mined_at = to_i64(row[1]);
      const auto reward_addr = to_u64(row[3]);
      const auto reward = to_i64(row[4]);
      const auto count = to_u64(row[5]);
      if (!height || !mined_at || !reward_addr || !reward || !count) {
        if (!ld.defect(LoadErrorKind::kBadNumber, blocks_path, line,
                       "unparseable numeric field")) break;
        continue;
      }
      if (blocks.count(*height) != 0) {
        if (!ld.defect(LoadErrorKind::kDuplicateHeight, blocks_path, line,
                       "height " + row[0] + " already seen")) break;
        continue;
      }
      if (last_height && *height < *last_height) {
        // The export writes strictly increasing heights; re-sorting (the
        // height-keyed map) repairs this in lenient mode.
        if (!ld.defect(LoadErrorKind::kOutOfOrderRow, blocks_path, line,
                       "height " + row[0] + " after " +
                           std::to_string(*last_height),
                       Loader::Fix::kRepairRow)) break;
      }
      last_height = *height;
      btc::Coinbase cb;
      cb.tag = row[2];
      cb.reward_address = btc::Address{*reward_addr};
      if (addresses != nullptr) addresses->intern(cb.reward_address);
      cb.reward = btc::Satoshi{*reward};
      blocks.emplace(*height,
                     RawBlock{*mined_at, std::move(cb), *count, line, false});
    }
  }
  if (ld.fatal) {
    result.report = std::move(ld.report);
    return result;
  }

  // --- txs.csv -----------------------------------------------------------
  struct RawTxRow {
    std::uint64_t position = 0;
    std::string id_hex;
    btc::Txid id{};
    SimTime issued = 0;
    std::uint32_t vsize = 0;
    btc::Satoshi fee{};
    std::size_t line = 0;
  };
  std::map<std::uint64_t, std::vector<RawTxRow>> txs_by_height;
  const std::string txs_path = dir + "/txs.csv";
  {
    CsvReader in(txs_path);
    if (!in.ok()) {
      ld.fatal_defect(LoadErrorKind::kFileOpen, txs_path, "cannot open");
    } else if (!in.next_row(row)) {
      ld.fatal_defect(LoadErrorKind::kMissingHeader, txs_path, "empty file");
    }
    std::unordered_set<std::string> seen_txids;
    std::unordered_map<std::uint64_t, std::unordered_set<std::uint64_t>> seen_positions;
    std::optional<std::uint64_t> last_height;
    std::optional<std::uint64_t> last_position;
    while (!ld.fatal && in.next_row(row)) {
      ++ld.report.rows_read;
      const std::size_t line = in.line();
      if (in.truncated()) {
        if (!ld.defect(LoadErrorKind::kUnterminatedQuote, txs_path, line,
                       "record ends inside a quoted field")) break;
        continue;
      }
      if (row.size() != 6) {
        if (!ld.defect(LoadErrorKind::kBadFieldCount, txs_path, line,
                       "expected 6 fields, found " + std::to_string(row.size()))) break;
        continue;
      }
      const auto height = to_u64(row[0]);
      const auto position = to_u64(row[1]);
      const auto issued = to_i64(row[3]);
      const auto vsize = to_u64(row[4]);
      const auto fee = to_i64(row[5]);
      if (!height || !position || !issued || !vsize || !fee) {
        if (!ld.defect(LoadErrorKind::kBadNumber, txs_path, line,
                       "unparseable numeric field")) break;
        continue;
      }
      const auto id = btc::Txid::from_hex(row[2]);
      if (!id) {
        if (!ld.defect(LoadErrorKind::kBadTxid, txs_path, line,
                       "bad txid '" + row[2] + "'")) break;
        continue;
      }
      if (!seen_txids.insert(row[2]).second) {
        if (!ld.defect(LoadErrorKind::kDuplicateTxid, txs_path, line,
                       "txid " + row[2].substr(0, 16) + "... already seen")) break;
        continue;
      }
      if (!seen_positions[*height].insert(*position).second) {
        if (!ld.defect(LoadErrorKind::kDuplicateTxPosition, txs_path, line,
                       "(height " + row[0] + ", position " + row[1] +
                           ") already seen")) break;
        continue;
      }
      if (last_height &&
          (*height < *last_height ||
           (*height == *last_height && last_position &&
            *position < *last_position))) {
        // Repaired by the position sort at block assembly.
        if (!ld.defect(LoadErrorKind::kOutOfOrderRow, txs_path, line,
                       "row for (height " + row[0] + ", position " + row[1] +
                           ") out of export order",
                       Loader::Fix::kRepairRow)) break;
      }
      if (last_height != *height) last_position.reset();
      last_height = *height;
      if (!last_position || *position > *last_position) last_position = *position;
      txs_by_height[*height].push_back(
          RawTxRow{*position, row[2], *id, *issued,
                   static_cast<std::uint32_t>(*vsize), btc::Satoshi{*fee}, line});
    }
  }
  if (ld.fatal) {
    result.report = std::move(ld.report);
    return result;
  }

  // --- inputs.csv / outputs.csv ------------------------------------------
  std::unordered_map<std::string, std::vector<btc::TxInput>> inputs_by_tx;
  const std::string inputs_path = dir + "/inputs.csv";
  {
    CsvReader in(inputs_path);
    if (!in.ok()) {
      ld.fatal_defect(LoadErrorKind::kFileOpen, inputs_path, "cannot open");
    } else if (!in.next_row(row)) {
      ld.fatal_defect(LoadErrorKind::kMissingHeader, inputs_path, "empty file");
    }
    while (!ld.fatal && in.next_row(row)) {
      ++ld.report.rows_read;
      const std::size_t line = in.line();
      if (in.truncated()) {
        if (!ld.defect(LoadErrorKind::kUnterminatedQuote, inputs_path, line,
                       "record ends inside a quoted field")) break;
        continue;
      }
      if (row.size() != 4) {
        if (!ld.defect(LoadErrorKind::kBadFieldCount, inputs_path, line,
                       "expected 4 fields, found " + std::to_string(row.size()))) break;
        continue;
      }
      if (!btc::Txid::from_hex(row[0])) {
        if (!ld.defect(LoadErrorKind::kBadTxid, inputs_path, line,
                       "bad txid '" + row[0] + "'")) break;
        continue;
      }
      const auto prev = btc::Txid::from_hex(row[1]);
      const auto vout = to_u64(row[2]);
      const auto owner = to_u64(row[3]);
      if (!prev) {
        if (!ld.defect(LoadErrorKind::kBadTxid, inputs_path, line,
                       "bad prev_txid '" + row[1] + "'")) break;
        continue;
      }
      if (!vout || !owner) {
        if (!ld.defect(LoadErrorKind::kBadNumber, inputs_path, line,
                       "unparseable numeric field")) break;
        continue;
      }
      const btc::Address owner_addr{*owner};
      if (addresses != nullptr) addresses->intern(owner_addr);
      inputs_by_tx[row[0]].push_back(
          btc::TxInput{*prev, static_cast<std::uint32_t>(*vout), owner_addr});
    }
  }
  if (ld.fatal) {
    result.report = std::move(ld.report);
    return result;
  }

  std::unordered_map<std::string, std::vector<btc::TxOutput>> outputs_by_tx;
  const std::string outputs_path = dir + "/outputs.csv";
  {
    CsvReader in(outputs_path);
    if (!in.ok()) {
      ld.fatal_defect(LoadErrorKind::kFileOpen, outputs_path, "cannot open");
    } else if (!in.next_row(row)) {
      ld.fatal_defect(LoadErrorKind::kMissingHeader, outputs_path, "empty file");
    }
    while (!ld.fatal && in.next_row(row)) {
      ++ld.report.rows_read;
      const std::size_t line = in.line();
      if (in.truncated()) {
        if (!ld.defect(LoadErrorKind::kUnterminatedQuote, outputs_path, line,
                       "record ends inside a quoted field")) break;
        continue;
      }
      if (row.size() != 3) {
        if (!ld.defect(LoadErrorKind::kBadFieldCount, outputs_path, line,
                       "expected 3 fields, found " + std::to_string(row.size()))) break;
        continue;
      }
      if (!btc::Txid::from_hex(row[0])) {
        if (!ld.defect(LoadErrorKind::kBadTxid, outputs_path, line,
                       "bad txid '" + row[0] + "'")) break;
        continue;
      }
      const auto to = to_u64(row[1]);
      const auto value = to_i64(row[2]);
      if (!to || !value) {
        if (!ld.defect(LoadErrorKind::kBadNumber, outputs_path, line,
                       "unparseable numeric field")) break;
        continue;
      }
      const btc::Address to_addr{*to};
      if (addresses != nullptr) addresses->intern(to_addr);
      outputs_by_tx[row[0]].push_back(
          btc::TxOutput{to_addr, btc::Satoshi{*value}});
    }
  }
  if (ld.fatal) {
    result.report = std::move(ld.report);
    return result;
  }

  // --- assembly ----------------------------------------------------------
  // The chain requires contiguous heights; detect holes (and heights that
  // have transactions but no block row) instead of tripping the append
  // precondition. Lenient mode reconstructs a placeholder block — empty
  // coinbase, interpolated mined_at — and records the decision.
  if (!blocks.empty() || !txs_by_height.empty()) {
    std::uint64_t min_h = ~std::uint64_t{0}, max_h = 0;
    for (const auto& [h, b] : blocks) {
      min_h = std::min(min_h, h);
      max_h = std::max(max_h, h);
    }
    for (const auto& [h, t] : txs_by_height) {
      min_h = std::min(min_h, h);
      max_h = std::max(max_h, h);
    }
    const auto interpolate_mined_at = [&blocks](std::uint64_t h) -> SimTime {
      const auto above = blocks.lower_bound(h);
      std::optional<SimTime> lo, hi;
      if (above != blocks.end()) hi = above->second.mined_at;
      if (above != blocks.begin()) lo = std::prev(above)->second.mined_at;
      if (lo && hi) return (*lo + *hi) / 2;
      if (lo) return *lo + 600;
      if (hi) return *hi >= 600 ? *hi - 600 : 0;
      return 0;
    };
    for (std::uint64_t h = min_h; !ld.fatal && h <= max_h; ++h) {
      if (blocks.count(h) != 0) continue;
      const bool has_txs = txs_by_height.count(h) != 0;
      if (!ld.defect(LoadErrorKind::kMissingBlockRow, blocks_path, 0,
                     has_txs ? "height " + std::to_string(h) +
                                   " has transactions but no block row"
                             : "height hole at " + std::to_string(h) +
                                   " inside the block range",
                     Loader::Fix::kRepairRow)) break;
      RawBlock placeholder;
      placeholder.mined_at = interpolate_mined_at(h);
      placeholder.tx_count =
          has_txs ? static_cast<std::uint64_t>(txs_by_height[h].size()) : 0;
      placeholder.reconstructed = true;
      blocks.emplace(h, std::move(placeholder));
    }
  }
  if (ld.fatal) {
    result.report = std::move(ld.report);
    return result;
  }

  btc::Chain chain;
  for (auto& [height, raw] : blocks) {
    if (ld.fatal) break;
    std::vector<btc::Transaction> txs;
    const auto it = txs_by_height.find(height);
    if (it != txs_by_height.end()) {
      std::vector<RawTxRow>& rows = it->second;
      std::sort(rows.begin(), rows.end(),
                [](const RawTxRow& a, const RawTxRow& b) {
                  return a.position != b.position ? a.position < b.position
                                                  : a.line < b.line;
                });
      // After the sort, positions must form 0..n-1 (duplicates were
      // rejected above, so any deviation is a gap).
      for (std::size_t i = 0; i < rows.size(); ++i) {
        if (rows[i].position == i) continue;
        if (!ld.defect(LoadErrorKind::kBadPositionSequence, txs_path,
                       rows[i].line,
                       "height " + std::to_string(height) + ": position " +
                           std::to_string(rows[i].position) +
                           " where " + std::to_string(i) + " was expected",
                       Loader::Fix::kRepairRow)) break;
        rows[i].position = i;  // lenient: renumber, preserving sorted order
      }
      if (ld.fatal) break;
      txs.reserve(rows.size());
      for (RawTxRow& r : rows) {
        auto ins = inputs_by_tx.find(r.id_hex) != inputs_by_tx.end()
                       ? std::move(inputs_by_tx[r.id_hex])
                       : std::vector<btc::TxInput>{};
        auto outs = outputs_by_tx.find(r.id_hex) != outputs_by_tx.end()
                        ? std::move(outputs_by_tx[r.id_hex])
                        : std::vector<btc::TxOutput>{};
        txs.push_back(btc::Transaction::restore(r.id, r.issued, r.vsize, r.fee,
                                                std::move(ins), std::move(outs)));
      }
    }
    if (txs.size() != raw.tx_count && !raw.reconstructed) {
      if (!ld.defect(LoadErrorKind::kTxCountMismatch, blocks_path, raw.line,
                     "height " + std::to_string(height) + ": tx_count says " +
                         std::to_string(raw.tx_count) + ", found " +
                         std::to_string(txs.size()),
                     Loader::Fix::kRepairRow)) break;
      // lenient: trust the transaction rows actually present
    }
    chain.append(btc::Block(height, raw.mined_at, std::move(raw.coinbase),
                            std::move(txs)));
  }
  if (ld.fatal) {
    result.report = std::move(ld.report);
    return result;
  }

  result.value = std::move(chain);
  result.report = std::move(ld.report);
  return result;
}

}  // namespace

LoadResult<btc::Chain> import_chain(const std::string& dir, LoadPolicy policy,
                                    btc::AddressTable* addresses) {
  const obs::Span span("io.import_chain");
  LoadResult<btc::Chain> result = import_chain_impl(dir, policy, addresses);
  record_ingest_metrics(result.report);
  return result;
}

bool export_snapshots(const node::SnapshotSeries& series, const std::string& path,
                      std::string* error) {
  TmpCsv csv(path);
  if (!csv.writer.ok()) return set_error(error, "could not open " + csv.tmp_path);
  csv.writer.header({"time", "tx_count", "total_vsize"});
  for (const node::MempoolStat& s : series.stats()) {
    csv.writer.field(s.time).field(s.tx_count).field(s.total_vsize);
    csv.writer.end_row();
  }
  return commit_exports({&csv}, error);
}

namespace {

LoadResult<node::SnapshotSeries> import_snapshots_impl(const std::string& path,
                                                       LoadPolicy policy) {
  LoadResult<node::SnapshotSeries> result;
  Loader ld(policy);
  CsvReader in(path);
  std::vector<std::string> row;
  if (!in.ok()) {
    ld.fatal_defect(LoadErrorKind::kFileOpen, path, "cannot open");
  } else if (!in.next_row(row)) {
    ld.fatal_defect(LoadErrorKind::kMissingHeader, path, "empty file");
  }

  struct RawStat {
    node::MempoolStat stat;
    std::size_t line = 0;
  };
  std::vector<RawStat> stats;
  bool needs_sort = false;
  while (!ld.fatal && in.next_row(row)) {
    ++ld.report.rows_read;
    const std::size_t line = in.line();
    if (in.truncated()) {
      if (!ld.defect(LoadErrorKind::kUnterminatedQuote, path, line,
                     "record ends inside a quoted field")) break;
      continue;
    }
    if (row.size() != 3) {
      if (!ld.defect(LoadErrorKind::kBadFieldCount, path, line,
                     "expected 3 fields, found " + std::to_string(row.size()))) break;
      continue;
    }
    const auto time = to_i64(row[0]);
    const auto count = to_u64(row[1]);
    const auto vsize = to_u64(row[2]);
    if (!time || !count || !vsize) {
      if (!ld.defect(LoadErrorKind::kBadNumber, path, line,
                     "unparseable numeric field")) break;
      continue;
    }
    if (!stats.empty() && *time <= stats.back().stat.time) {
      // SnapshotSeries requires strictly increasing times; lenient
      // re-sorts and drops exact-duplicate timestamps.
      if (!ld.defect(LoadErrorKind::kOutOfOrderRow, path, line,
                     "time " + row[0] + " not after " +
                         std::to_string(stats.back().stat.time),
                     Loader::Fix::kRepairRow)) break;
      needs_sort = true;
    }
    stats.push_back(RawStat{{*time, *count, *vsize}, line});
  }
  if (ld.fatal) {
    result.report = std::move(ld.report);
    return result;
  }
  if (needs_sort) {
    std::stable_sort(stats.begin(), stats.end(),
                     [](const RawStat& a, const RawStat& b) {
                       return a.stat.time < b.stat.time;
                     });
    stats.erase(std::unique(stats.begin(), stats.end(),
                            [](const RawStat& a, const RawStat& b) {
                              return a.stat.time == b.stat.time;
                            }),
                stats.end());
  }
  node::SnapshotSeries series;
  for (const RawStat& s : stats) series.record(s.stat);
  result.value = std::move(series);
  result.report = std::move(ld.report);
  return result;
}

}  // namespace

LoadResult<node::SnapshotSeries> import_snapshots(const std::string& path,
                                                  LoadPolicy policy) {
  const obs::Span span("io.import_snapshots");
  LoadResult<node::SnapshotSeries> result = import_snapshots_impl(path, policy);
  record_ingest_metrics(result.report);
  return result;
}

bool export_first_seen(const FirstSeenMap& first_seen, const std::string& path,
                       std::string* error) {
  TmpCsv csv(path);
  if (!csv.writer.ok()) return set_error(error, "could not open " + csv.tmp_path);
  csv.writer.header({"txid", "first_seen"});
  // Sorted by txid so the file bytes are a pure function of the map —
  // the same order the CNB1 first-seen section uses, which makes the
  // csv -> cnb -> csv round trip byte-identical.
  std::vector<std::pair<btc::Txid, SimTime>> rows(first_seen.begin(),
                                                  first_seen.end());
  std::sort(rows.begin(), rows.end());
  for (const auto& [id, time] : rows) {
    csv.writer.field(id.to_hex()).field(time);
    csv.writer.end_row();
  }
  return commit_exports({&csv}, error);
}

namespace {

LoadResult<FirstSeenMap> import_first_seen_impl(const std::string& path,
                                                LoadPolicy policy) {
  LoadResult<FirstSeenMap> result;
  Loader ld(policy);
  CsvReader in(path);
  std::vector<std::string> row;
  if (!in.ok()) {
    ld.fatal_defect(LoadErrorKind::kFileOpen, path, "cannot open");
  } else if (!in.next_row(row)) {
    ld.fatal_defect(LoadErrorKind::kMissingHeader, path, "empty file");
  }
  FirstSeenMap out;
  while (!ld.fatal && in.next_row(row)) {
    ++ld.report.rows_read;
    const std::size_t line = in.line();
    if (in.truncated()) {
      if (!ld.defect(LoadErrorKind::kUnterminatedQuote, path, line,
                     "record ends inside a quoted field")) break;
      continue;
    }
    if (row.size() != 2) {
      if (!ld.defect(LoadErrorKind::kBadFieldCount, path, line,
                     "expected 2 fields, found " + std::to_string(row.size()))) break;
      continue;
    }
    const auto id = btc::Txid::from_hex(row[0]);
    if (!id) {
      if (!ld.defect(LoadErrorKind::kBadTxid, path, line,
                     "bad txid '" + row[0] + "'")) break;
      continue;
    }
    const auto time = to_i64(row[1]);
    if (!time) {
      if (!ld.defect(LoadErrorKind::kBadNumber, path, line,
                     "unparseable numeric field")) break;
      continue;
    }
    if (!out.emplace(*id, *time).second) {
      if (!ld.defect(LoadErrorKind::kDuplicateTxid, path, line,
                     "txid " + row[0].substr(0, 16) + "... already seen")) break;
      continue;  // lenient: first occurrence wins
    }
  }
  if (ld.fatal) {
    result.report = std::move(ld.report);
    return result;
  }
  result.value = std::move(out);
  result.report = std::move(ld.report);
  return result;
}

}  // namespace

LoadResult<FirstSeenMap> import_first_seen(const std::string& path,
                                           LoadPolicy policy) {
  const obs::Span span("io.import_first_seen");
  LoadResult<FirstSeenMap> result = import_first_seen_impl(path, policy);
  record_ingest_metrics(result.report);
  return result;
}

}  // namespace cn::io

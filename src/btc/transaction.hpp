// Transactions. The model keeps exactly the observables the audit needs —
// identity, broadcast time, virtual size, fee, and the wallet graph
// (inputs spending from addresses, outputs paying to addresses) — while
// omitting scripts/witnesses, which play no role in ordering.
//
// Note what is deliberately *not* here: any record of dark (side-channel)
// acceleration fees. As in the real chain, those are invisible on-chain;
// the simulator keeps them in a separate ground-truth registry.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "btc/amount.hpp"
#include "btc/txid.hpp"
#include "util/time.hpp"

namespace cn::btc {

/// A transaction input: a reference to the funding output plus the wallet
/// that owned it (the "sender").
struct TxInput {
  Txid prev_txid{};
  std::uint32_t prev_vout = 0;
  Address owner{};
};

/// A transaction output: the paid wallet and the amount.
struct TxOutput {
  Address to{};
  Satoshi value{};
};

class Transaction {
 public:
  Transaction() = default;

  /// Constructs and freezes a transaction; the txid is derived from the
  /// content (inputs, outputs, fee, size, and a creation nonce), so two
  /// distinct transactions never share an id.
  Transaction(SimTime issued, std::uint32_t vsize_vb, Satoshi fee,
              std::vector<TxInput> inputs, std::vector<TxOutput> outputs,
              std::uint64_t nonce);

  /// Deserialization path: reconstructs a transaction with a KNOWN id
  /// (e.g. from an exported data set). The id is trusted, not recomputed —
  /// use only when loading data this library previously produced.
  static Transaction restore(Txid id, SimTime issued, std::uint32_t vsize_vb,
                             Satoshi fee, std::vector<TxInput> inputs,
                             std::vector<TxOutput> outputs);

  const Txid& id() const noexcept { return id_; }
  SimTime issued() const noexcept { return issued_; }
  std::uint32_t vsize() const noexcept { return vsize_; }
  Satoshi fee() const noexcept { return fee_; }
  FeeRate fee_rate() const noexcept { return FeeRate(fee_, vsize_); }

  std::span<const TxInput> inputs() const noexcept { return inputs_; }
  std::span<const TxOutput> outputs() const noexcept { return outputs_; }

  Satoshi total_output() const noexcept;

  /// True if any input spends from @p a.
  bool spends_from(Address a) const noexcept;
  /// True if any output pays to @p a.
  bool pays_to(Address a) const noexcept;
  /// spends_from(a) || pays_to(a) — "self-interest" w.r.t. wallet a.
  bool involves(Address a) const noexcept;

  /// True if any input spends an output of @p parent.
  bool spends_output_of(const Txid& parent) const noexcept;

 private:
  Txid id_{};
  SimTime issued_ = 0;
  std::uint32_t vsize_ = 0;
  Satoshi fee_{};
  std::vector<TxInput> inputs_;
  std::vector<TxOutput> outputs_;
};

/// Convenience factory for the common 1-input payment shape. The input
/// spends a synthetic confirmed funding outpoint derived from (from,
/// nonce) — unique per call, so independent payments never conflict, and
/// replacements built with make_replacement() deliberately do.
Transaction make_payment(SimTime issued, std::uint32_t vsize_vb, Satoshi fee,
                         Address from, Address to, Satoshi amount,
                         std::uint64_t nonce);

/// A replacement (BIP-125-style) of @p original: spends exactly the same
/// outpoints, with a new fee/outputs. Conflicts with the original by
/// construction.
Transaction make_replacement(SimTime issued, const Transaction& original,
                             Satoshi new_fee, std::uint64_t nonce);

/// Factory for a child transaction spending output 0 of @p parent
/// (child-pays-for-parent shape).
Transaction make_child_payment(SimTime issued, std::uint32_t vsize_vb,
                               Satoshi fee, const Transaction& parent,
                               Address to, Satoshi amount, std::uint64_t nonce);

}  // namespace cn::btc

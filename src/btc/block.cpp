#include "btc/block.hpp"

#include <unordered_set>

#include "btc/merkle.hpp"
#include "util/assert.hpp"

namespace cn::btc {

Block::Block(std::uint64_t height, SimTime mined_at, Coinbase coinbase,
             std::vector<Transaction> txs)
    : height_(height),
      mined_at_(mined_at),
      coinbase_(std::move(coinbase)),
      txs_(std::move(txs)) {
  for (const Transaction& tx : txs_) {
    total_vsize_ += tx.vsize();
    total_fees_ += tx.fee();
  }
  CN_ASSERT(total_vsize_ + kCoinbaseVsize <= kMaxBlockVsize);
}

std::optional<std::size_t> Block::position_of(const Txid& id) const noexcept {
  for (std::size_t i = 0; i < txs_.size(); ++i)
    if (txs_[i].id() == id) return i;
  return std::nullopt;
}

bool Block::is_cpfp_at(std::size_t index) const {
  CN_ASSERT(index < txs_.size());
  const Transaction& tx = txs_[index];
  // A tx is in-block CPFP if it spends an output of ANY tx in this block
  // (the paper's definition does not require the parent to come earlier in
  // the serialized order, though topological validity implies it does).
  for (const TxInput& in : tx.inputs()) {
    if (in.prev_txid.is_null()) continue;
    for (const Transaction& other : txs_) {
      if (other.id() == in.prev_txid) return true;
    }
  }
  return false;
}

Txid Block::coinbase_id() const {
  std::string buf;
  buf.reserve(coinbase_.tag.size() + 32);
  buf.append("coinbase/");
  buf.append(coinbase_.tag);
  buf.push_back('/');
  buf.append(std::to_string(coinbase_.reward_address.value));
  buf.push_back('/');
  buf.append(std::to_string(coinbase_.reward.value));
  buf.push_back('/');
  buf.append(std::to_string(height_));
  return Txid::hash_of(buf);
}

Txid Block::compute_merkle_root() const {
  std::vector<Txid> leaves;
  leaves.reserve(txs_.size() + 1);
  leaves.push_back(coinbase_id());
  for (const Transaction& tx : txs_) leaves.push_back(tx.id());
  return merkle_root(leaves);
}

void Block::seal(const BlockHash& prev_hash) {
  CN_ASSERT(!sealed_);
  header_.prev_hash = prev_hash;
  header_.merkle_root = compute_merkle_root();
  header_.height = height_;
  header_.timestamp = mined_at_;
  sealed_ = true;
}

void Block::restore_header(const Txid& merkle_root,
                           const BlockHash& prev_hash) {
  CN_ASSERT(!sealed_);
  header_.prev_hash = prev_hash;
  header_.merkle_root = merkle_root;
  header_.height = height_;
  header_.timestamp = mined_at_;
  sealed_ = true;
}

const BlockHeader& Block::header() const {
  CN_ASSERT(sealed_);
  return header_;
}

std::vector<std::size_t> Block::cpfp_positions() const {
  // Hash all txids once, then test inputs against the set: O(n + inputs).
  std::unordered_set<Txid> ids;
  ids.reserve(txs_.size() * 2);
  for (const Transaction& tx : txs_) ids.insert(tx.id());

  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < txs_.size(); ++i) {
    for (const TxInput& in : txs_[i].inputs()) {
      if (!in.prev_txid.is_null() && ids.contains(in.prev_txid)) {
        out.push_back(i);
        break;
      }
    }
  }
  return out;
}

}  // namespace cn::btc

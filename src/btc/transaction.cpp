#include "btc/transaction.hpp"

#include <charconv>
#include <cstring>
#include <memory>
#include <string>

#include "util/assert.hpp"
#include "util/hex.hpp"

namespace cn::btc {

namespace {

// Serializes into a stack buffer and hashes in place: the per-tx id
// derivation is hot enough in the simulator that the std::string
// push_back version showed up as ~5% of a run. Byte layout is unchanged
// (explicit little-endian), so ids are identical to earlier versions.
Txid id_for(SimTime issued, std::uint32_t vsize, Satoshi fee,
            const std::vector<TxInput>& inputs,
            const std::vector<TxOutput>& outputs, std::uint64_t nonce) {
  const std::size_t total = 32 + inputs.size() * 48 + outputs.size() * 16;
  std::uint8_t stack[512];
  std::unique_ptr<std::uint8_t[]> heap;
  std::uint8_t* buf = stack;
  if (total > sizeof(stack)) {
    heap = std::make_unique<std::uint8_t[]>(total);
    buf = heap.get();
  }
  std::uint8_t* p = buf;
  const auto put_u64 = [&p](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
    p += 8;
  };
  put_u64(static_cast<std::uint64_t>(issued));
  put_u64(vsize);
  put_u64(static_cast<std::uint64_t>(fee.value));
  put_u64(nonce);
  for (const TxInput& in : inputs) {
    std::memcpy(p, in.prev_txid.bytes.data(), in.prev_txid.bytes.size());
    p += in.prev_txid.bytes.size();
    put_u64(in.prev_vout);
    put_u64(in.owner.value);
  }
  for (const TxOutput& out : outputs) {
    put_u64(out.to.value);
    put_u64(static_cast<std::uint64_t>(out.value.value));
  }
  CN_ASSERT(static_cast<std::size_t>(p - buf) == total);
  return Txid::hash_of(
      std::string_view(reinterpret_cast<const char*>(buf), total));
}

}  // namespace

Transaction::Transaction(SimTime issued, std::uint32_t vsize_vb, Satoshi fee,
                         std::vector<TxInput> inputs,
                         std::vector<TxOutput> outputs, std::uint64_t nonce)
    : issued_(issued),
      vsize_(vsize_vb),
      fee_(fee),
      inputs_(std::move(inputs)),
      outputs_(std::move(outputs)) {
  CN_ASSERT(vsize_ > 0);
  CN_ASSERT(fee_.value >= 0);
  id_ = id_for(issued_, vsize_, fee_, inputs_, outputs_, nonce);
}

Transaction Transaction::restore(Txid id, SimTime issued, std::uint32_t vsize_vb,
                                 Satoshi fee, std::vector<TxInput> inputs,
                                 std::vector<TxOutput> outputs) {
  CN_ASSERT(!id.is_null());
  Transaction tx;
  tx.id_ = id;
  tx.issued_ = issued;
  tx.vsize_ = vsize_vb;
  tx.fee_ = fee;
  tx.inputs_ = std::move(inputs);
  tx.outputs_ = std::move(outputs);
  CN_ASSERT(tx.vsize_ > 0);
  CN_ASSERT(tx.fee_.value >= 0);
  return tx;
}

Satoshi Transaction::total_output() const noexcept {
  Satoshi sum{};
  for (const TxOutput& out : outputs_) sum += out.value;
  return sum;
}

bool Transaction::spends_from(Address a) const noexcept {
  for (const TxInput& in : inputs_)
    if (in.owner == a) return true;
  return false;
}

bool Transaction::pays_to(Address a) const noexcept {
  for (const TxOutput& out : outputs_)
    if (out.to == a) return true;
  return false;
}

bool Transaction::involves(Address a) const noexcept {
  return spends_from(a) || pays_to(a);
}

bool Transaction::spends_output_of(const Txid& parent) const noexcept {
  for (const TxInput& in : inputs_)
    if (in.prev_txid == parent) return true;
  return false;
}

Transaction make_payment(SimTime issued, std::uint32_t vsize_vb, Satoshi fee,
                         Address from, Address to, Satoshi amount,
                         std::uint64_t nonce) {
  // Synthetic confirmed funding outpoint; the "funding/" domain prefix
  // keeps these ids disjoint from real transaction ids. Formatted on the
  // stack — the preimage bytes match the old string concatenation.
  char pre[64] = "funding/";
  char* q = pre + 8;
  q = std::to_chars(q, pre + sizeof(pre) - 1, from.value).ptr;
  *q++ = '/';
  q = std::to_chars(q, pre + sizeof(pre), nonce).ptr;
  const Txid funding = Txid::hash_of(std::string_view(pre, q - pre));
  std::vector<TxInput> ins{TxInput{funding, 0, from}};
  std::vector<TxOutput> outs{TxOutput{to, amount}};
  return Transaction(issued, vsize_vb, fee, std::move(ins), std::move(outs), nonce);
}

Transaction make_replacement(SimTime issued, const Transaction& original,
                             Satoshi new_fee, std::uint64_t nonce) {
  std::vector<TxInput> ins(original.inputs().begin(), original.inputs().end());
  std::vector<TxOutput> outs(original.outputs().begin(), original.outputs().end());
  // The extra fee comes out of the first output (sender trims change).
  if (!outs.empty()) {
    const Satoshi delta = new_fee - original.fee();
    if (delta.value > 0 && outs[0].value > delta) outs[0].value -= delta;
  }
  return Transaction(issued, original.vsize(), new_fee, std::move(ins),
                     std::move(outs), nonce);
}

Transaction make_child_payment(SimTime issued, std::uint32_t vsize_vb,
                               Satoshi fee, const Transaction& parent,
                               Address to, Satoshi amount, std::uint64_t nonce) {
  CN_ASSERT(!parent.outputs().empty());
  std::vector<TxInput> ins{TxInput{parent.id(), 0, parent.outputs()[0].to}};
  std::vector<TxOutput> outs{TxOutput{to, amount}};
  return Transaction(issued, vsize_vb, fee, std::move(ins), std::move(outs), nonce);
}

}  // namespace cn::btc

#include "btc/chain.hpp"

#include "util/assert.hpp"

namespace cn::btc {

void Chain::append(Block block) {
  if (blocks_.empty() && next_height_ == 0) next_height_ = block.height();
  CN_ASSERT(block.height() == next_height_);
  if (!block.sealed()) block.seal(tip_hash());
  const std::uint64_t height = block.height();
  for (std::size_t i = 0; i < block.txs().size(); ++i) {
    tx_index_.emplace(block.txs()[i].id(), TxLocation{height, i});
  }
  total_txs_ += block.tx_count();
  blocks_.push_back(std::move(block));
  ++next_height_;
}

BlockHash Chain::tip_hash() const noexcept {
  if (blocks_.empty()) return kNullTxid;
  return blocks_.back().hash();
}

bool Chain::verify_integrity() const {
  BlockHash prev = kNullTxid;
  for (const Block& block : blocks_) {
    if (!block.sealed()) return false;
    const BlockHeader& header = block.header();
    if (header.prev_hash != prev) return false;
    if (header.merkle_root != block.compute_merkle_root()) return false;
    if (header.height != block.height()) return false;
    prev = header.hash();
  }
  return true;
}

const Block& Chain::at_height(std::uint64_t height) const {
  CN_ASSERT(!blocks_.empty());
  const std::uint64_t first = blocks_.front().height();
  CN_ASSERT(height >= first && height < first + blocks_.size());
  return blocks_[height - first];
}

const Block& Chain::front() const {
  CN_ASSERT(!blocks_.empty());
  return blocks_.front();
}

const Block& Chain::back() const {
  CN_ASSERT(!blocks_.empty());
  return blocks_.back();
}

std::optional<TxLocation> Chain::locate(const Txid& id) const noexcept {
  const auto it = tx_index_.find(id);
  if (it == tx_index_.end()) return std::nullopt;
  return it->second;
}

const Transaction* Chain::find_tx(const Txid& id) const noexcept {
  const auto loc = locate(id);
  if (!loc) return nullptr;
  return &at_height(loc->block_height).txs()[loc->position];
}

std::uint64_t Chain::empty_block_count() const noexcept {
  std::uint64_t n = 0;
  for (const Block& b : blocks_)
    if (b.is_empty()) ++n;
  return n;
}

}  // namespace cn::btc

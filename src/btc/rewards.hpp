// Block subsidy schedule (halvings) and helper mapping between calendar
// years and representative block heights; used by the Table 5 experiment
// (fee share of miner revenue, 2016-2020 — the May 2020 halving falls
// inside that window).
#pragma once

#include <cstdint>

#include "btc/amount.hpp"

namespace cn::btc {

/// Heights between halvings.
inline constexpr std::uint64_t kHalvingInterval = 210'000;

/// Block subsidy at @p height: 50 BTC halved every 210,000 blocks, with
/// sub-satoshi remainders truncated; zero after 64 halvings.
Satoshi block_subsidy(std::uint64_t height) noexcept;

/// Approximate first block height of a calendar year (anchored on real
/// observations: height 610691 ≈ Jan 1, 2020; ~52560 blocks/year).
std::uint64_t approx_height_of_year(int year) noexcept;

/// Inverse of the above (approximate year of a height).
int approx_year_of_height(std::uint64_t height) noexcept;

/// The height of the May 11, 2020 halving (subsidy 12.5 -> 6.25 BTC).
inline constexpr std::uint64_t kThirdHalvingHeight = 630'000;

}  // namespace cn::btc

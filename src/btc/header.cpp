#include "btc/header.hpp"

#include <string>

#include "util/sha256.hpp"

namespace cn::btc {

BlockHash BlockHeader::hash() const noexcept {
  std::string buf;
  buf.reserve(2 * 32 + 16 + 7);
  buf.append("header/");  // domain separation from txids
  buf.append(reinterpret_cast<const char*>(prev_hash.bytes.data()),
             prev_hash.bytes.size());
  buf.append(reinterpret_cast<const char*>(merkle_root.bytes.data()),
             merkle_root.bytes.size());
  for (int i = 0; i < 8; ++i) buf.push_back(static_cast<char>(height >> (8 * i)));
  const auto ts = static_cast<std::uint64_t>(timestamp);
  for (int i = 0; i < 8; ++i) buf.push_back(static_cast<char>(ts >> (8 * i)));
  BlockHash out;
  out.bytes = sha256d(buf);
  return out;
}

}  // namespace cn::btc

// Mining-pool attribution from coinbase markers.
//
// Mining pools customarily embed a signature string in the coinbase
// scriptSig ("/F2Pool/", "/ViaBTC/", ...). Following the paper (and the
// prior work it cites, Judmayer et al. and Romiti et al.), we attribute a
// block to a pool by matching these markers, with an alias table for pools
// that share wallets/markers (BitDeer -> BTC.com, Buffett -> Lubian.com).
// Unmatched blocks stay "unknown" (the paper could not identify ~1.32%).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cn::btc {

struct PoolTag {
  std::string pool_name;  ///< canonical pool name
  std::string marker;     ///< substring searched for in the coinbase tag
};

class CoinbaseTagRegistry {
 public:
  CoinbaseTagRegistry() = default;

  /// Registers a marker for a pool; longest-marker match wins at lookup.
  void add(std::string pool_name, std::string marker);

  /// Registers an alias: blocks attributed to @p alias are reported as
  /// @p canonical (paper: BitDeer->BTC.com, Buffett->Lubian.com).
  void add_alias(std::string alias, std::string canonical);

  /// Attributes a coinbase tag string to a pool, resolving aliases.
  /// Returns std::nullopt when no marker matches.
  std::optional<std::string> identify(std::string_view coinbase_tag) const;

  /// Canonical name after alias resolution (identity if not aliased).
  std::string canonical(std::string_view pool_name) const;

  std::size_t marker_count() const noexcept { return tags_.size(); }

  /// Order-sensitive 64-bit digest of every (pool, marker) tag and every
  /// (alias, canonical) pair — SHA-256 truncated. Derived pool-interning
  /// tables (the CNB1 audit-dataset sections, io/cnb.hpp) are keyed on
  /// this so a loader can tell whether stored PoolIds line up with the
  /// registry it is about to audit under.
  std::uint64_t fingerprint() const noexcept;

  /// Registry pre-loaded with the paper's top-20 pools (data set C) plus
  /// the pools that appear in data sets A/B, and the two alias pairs.
  static CoinbaseTagRegistry paper_registry();

 private:
  std::vector<PoolTag> tags_;
  std::vector<std::pair<std::string, std::string>> aliases_;
};

/// The conventional marker string for a pool name, e.g. "/F2Pool/".
std::string conventional_marker(std::string_view pool_name);

}  // namespace cn::btc

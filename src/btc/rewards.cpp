#include "btc/rewards.hpp"

namespace cn::btc {

Satoshi block_subsidy(std::uint64_t height) noexcept {
  const std::uint64_t halvings = height / kHalvingInterval;
  if (halvings >= 64) return Satoshi{0};
  std::int64_t subsidy = 50LL * kSatPerBtc;
  subsidy >>= halvings;
  return Satoshi{subsidy};
}

namespace {
// Anchor: data set C starts at height 610691 on Jan 1, 2020.
constexpr std::uint64_t kAnchorHeight = 610'691;
constexpr int kAnchorYear = 2020;
constexpr std::uint64_t kBlocksPerYear = 52'560;  // 144/day * 365
}  // namespace

std::uint64_t approx_height_of_year(int year) noexcept {
  const std::int64_t delta_years = year - kAnchorYear;
  const std::int64_t h = static_cast<std::int64_t>(kAnchorHeight) +
                         delta_years * static_cast<std::int64_t>(kBlocksPerYear);
  return h < 0 ? 0 : static_cast<std::uint64_t>(h);
}

int approx_year_of_height(std::uint64_t height) noexcept {
  const std::int64_t delta =
      static_cast<std::int64_t>(height) - static_cast<std::int64_t>(kAnchorHeight);
  // Floor division for negative deltas.
  std::int64_t years = delta / static_cast<std::int64_t>(kBlocksPerYear);
  if (delta < 0 && delta % static_cast<std::int64_t>(kBlocksPerYear) != 0) --years;
  return kAnchorYear + static_cast<int>(years);
}

}  // namespace cn::btc

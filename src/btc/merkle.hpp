// Merkle trees over transaction ids, as Bitcoin builds them: double
// SHA-256 of concatenated child digests, odd nodes paired with
// themselves. Used for block headers and inclusion proofs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "btc/txid.hpp"

namespace cn::btc {

/// Merkle root of an ordered txid list. The empty list hashes to the
/// null txid (a block with only a coinbase uses the coinbase id — the
/// simulator's blocks pass their tx list plus a synthetic coinbase id).
Txid merkle_root(std::span<const Txid> leaves) noexcept;

/// One step of an inclusion proof.
struct MerkleStep {
  Txid sibling{};
  bool sibling_on_right = false;  ///< position of the sibling in the pair
};

/// Inclusion proof for leaves[index]; O(log n) siblings.
std::vector<MerkleStep> merkle_proof(std::span<const Txid> leaves,
                                     std::size_t index);

/// Verifies that @p leaf at the proven position hashes up to @p root.
bool merkle_verify(const Txid& leaf, std::span<const MerkleStep> proof,
                   const Txid& root) noexcept;

}  // namespace cn::btc

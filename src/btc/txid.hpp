// Transaction and wallet identifiers.
//
// Txid is a 32-byte double-SHA-256 digest, as in Bitcoin. Address is a
// compact 64-bit wallet identifier derived by hashing a label; the audit
// only ever compares addresses for identity (pool-wallet membership), so a
// 64-bit digest-prefix identity is faithful and keeps data sets small.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace cn::btc {

struct Txid {
  std::array<std::uint8_t, 32> bytes{};

  auto operator<=>(const Txid&) const = default;

  /// Hex display, most-significant byte first (explorer convention).
  std::string to_hex() const;

  /// Parses the to_hex() representation; nullopt on malformed input.
  static std::optional<Txid> from_hex(std::string_view hex);

  /// Derives a txid by double-SHA-256 of an arbitrary preimage.
  static Txid hash_of(std::string_view preimage) noexcept;

  /// A cheap 64-bit key for hash maps (first 8 bytes of the digest).
  std::uint64_t short_id() const noexcept;

  bool is_null() const noexcept;
};

inline constexpr Txid kNullTxid{};

/// 64-bit wallet identifier.
struct Address {
  std::uint64_t value = 0;

  auto operator<=>(const Address&) const = default;

  bool is_null() const noexcept { return value == 0; }
  std::string to_string() const;

  /// Deterministically derives an address from a label (e.g. pool name +
  /// wallet index), via SHA-256.
  static Address derive(std::string_view label) noexcept;
};

inline constexpr Address kNullAddress{};

}  // namespace cn::btc

template <>
struct std::hash<cn::btc::Txid> {
  std::size_t operator()(const cn::btc::Txid& id) const noexcept {
    return static_cast<std::size_t>(id.short_id());
  }
};

template <>
struct std::hash<cn::btc::Address> {
  std::size_t operator()(const cn::btc::Address& a) const noexcept {
    return static_cast<std::size_t>(a.value);
  }
};

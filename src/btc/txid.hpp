// Transaction and wallet identifiers.
//
// Txid is a 32-byte double-SHA-256 digest, as in Bitcoin. Address is a
// compact 64-bit wallet identifier derived by hashing a label; the audit
// only ever compares addresses for identity (pool-wallet membership), so a
// 64-bit digest-prefix identity is faithful and keeps data sets small.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace cn::btc {

struct Txid {
  std::array<std::uint8_t, 32> bytes{};

  auto operator<=>(const Txid&) const = default;

  /// Word-wise equality: the defaulted operator== lowers to an
  /// out-of-line memcmp call, which shows up in profiles — every hash
  /// lookup in the simulator ends in one of these compares.
  bool operator==(const Txid& o) const noexcept {
    std::uint64_t a[4], b[4];
    std::memcpy(a, bytes.data(), sizeof(a));
    std::memcpy(b, o.bytes.data(), sizeof(b));
    return ((a[0] ^ b[0]) | (a[1] ^ b[1]) | (a[2] ^ b[2]) | (a[3] ^ b[3])) == 0;
  }

  /// Hex display, most-significant byte first (explorer convention).
  std::string to_hex() const;

  /// Parses the to_hex() representation; nullopt on malformed input.
  static std::optional<Txid> from_hex(std::string_view hex);

  /// Derives a txid by double-SHA-256 of an arbitrary preimage.
  static Txid hash_of(std::string_view preimage) noexcept;

  /// A cheap 64-bit key for hash maps (first 8 bytes of the digest).
  /// Inline: this is the single hottest call in the simulator (every
  /// mempool/observer hash lookup goes through it).
  std::uint64_t short_id() const noexcept {
    std::uint64_t v;
    std::memcpy(&v, bytes.data(), sizeof(v));
    return v;
  }

  bool is_null() const noexcept {
    for (std::uint8_t b : bytes)
      if (b != 0) return false;
    return true;
  }
};

inline constexpr Txid kNullTxid{};

/// 64-bit wallet identifier.
struct Address {
  std::uint64_t value = 0;

  auto operator<=>(const Address&) const = default;

  bool is_null() const noexcept { return value == 0; }
  std::string to_string() const;

  /// Deterministically derives an address from a label (e.g. pool name +
  /// wallet index), via SHA-256.
  static Address derive(std::string_view label) noexcept;
};

inline constexpr Address kNullAddress{};

}  // namespace cn::btc

template <>
struct std::hash<cn::btc::Txid> {
  std::size_t operator()(const cn::btc::Txid& id) const noexcept {
    return static_cast<std::size_t>(id.short_id());
  }
};

template <>
struct std::hash<cn::btc::Address> {
  std::size_t operator()(const cn::btc::Address& a) const noexcept {
    return static_cast<std::size_t>(a.value);
  }
};

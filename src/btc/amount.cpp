#include "btc/amount.hpp"

#include "util/strings.hpp"

namespace cn::btc {

double FeeRate::sat_per_vbyte() const noexcept {
  if (vsize_ == 0) return 0.0;
  return static_cast<double>(fee_.value) / static_cast<double>(vsize_);
}

double FeeRate::btc_per_kb() const noexcept {
  // 1 sat/vB == 1e-5 BTC/KB.
  return sat_per_vbyte() * 1e-5;
}

std::strong_ordering FeeRate::operator<=>(const FeeRate& o) const noexcept {
  if (vsize_ == 0 || o.vsize_ == 0) {
    // Invalid rates are the lowest; two invalid rates are equal.
    if (vsize_ == 0 && o.vsize_ == 0) return std::strong_ordering::equal;
    return vsize_ == 0 ? std::strong_ordering::less : std::strong_ordering::greater;
  }
  const __int128 lhs = static_cast<__int128>(fee_.value) * o.vsize_;
  const __int128 rhs = static_cast<__int128>(o.fee_.value) * vsize_;
  if (lhs < rhs) return std::strong_ordering::less;
  if (lhs > rhs) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

bool FeeRate::operator==(const FeeRate& o) const noexcept {
  return (*this <=> o) == std::strong_ordering::equal;
}

std::string FeeRate::to_string() const {
  return fixed(sat_per_vbyte(), 3) + " sat/vB";
}

}  // namespace cn::btc

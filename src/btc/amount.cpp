#include "btc/amount.hpp"

#include "util/strings.hpp"

namespace cn::btc {

double FeeRate::sat_per_vbyte() const noexcept {
  if (vsize_ == 0) return 0.0;
  return static_cast<double>(fee_.value) / static_cast<double>(vsize_);
}

double FeeRate::btc_per_kb() const noexcept {
  // 1 sat/vB == 1e-5 BTC/KB.
  return sat_per_vbyte() * 1e-5;
}

std::string FeeRate::to_string() const {
  return fixed(sat_per_vbyte(), 3) + " sat/vB";
}

}  // namespace cn::btc

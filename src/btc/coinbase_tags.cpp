#include "btc/coinbase_tags.hpp"

#include <algorithm>
#include <cstdint>

#include "util/sha256.hpp"
#include "util/strings.hpp"

namespace cn::btc {

void CoinbaseTagRegistry::add(std::string pool_name, std::string marker) {
  tags_.push_back(PoolTag{std::move(pool_name), std::move(marker)});
  // Keep longest markers first so the most specific match wins.
  std::stable_sort(tags_.begin(), tags_.end(),
                   [](const PoolTag& a, const PoolTag& b) {
                     return a.marker.size() > b.marker.size();
                   });
}

void CoinbaseTagRegistry::add_alias(std::string alias, std::string canonical) {
  aliases_.emplace_back(std::move(alias), std::move(canonical));
}

std::string CoinbaseTagRegistry::canonical(std::string_view pool_name) const {
  for (const auto& [alias, canon] : aliases_)
    if (alias == pool_name) return canon;
  return std::string(pool_name);
}

std::optional<std::string> CoinbaseTagRegistry::identify(
    std::string_view coinbase_tag) const {
  for (const PoolTag& tag : tags_) {
    if (contains_icase(coinbase_tag, tag.marker)) return canonical(tag.pool_name);
  }
  return std::nullopt;
}

std::uint64_t CoinbaseTagRegistry::fingerprint() const noexcept {
  constexpr std::string_view kSep("\0", 1);
  Sha256 hasher;
  for (const PoolTag& tag : tags_) {
    hasher.update("tag");
    hasher.update(kSep);
    hasher.update(tag.pool_name);
    hasher.update(kSep);
    hasher.update(tag.marker);
    hasher.update("\n");
  }
  for (const auto& [alias, canon] : aliases_) {
    hasher.update("alias");
    hasher.update(kSep);
    hasher.update(alias);
    hasher.update(kSep);
    hasher.update(canon);
    hasher.update("\n");
  }
  const Sha256Digest digest = hasher.finalize();
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(digest[i]) << (8 * i);
  }
  return value;
}

std::string conventional_marker(std::string_view pool_name) {
  return "/" + std::string(pool_name) + "/";
}

CoinbaseTagRegistry CoinbaseTagRegistry::paper_registry() {
  CoinbaseTagRegistry reg;
  // Top-20 MPOs of data set C (Figure 2c) plus the remaining pools named in
  // data sets A/B (Figure 2a/2b).
  static const char* kPools[] = {
      "F2Pool",       "Poolin",     "BTC.com",    "AntPool",   "Huobi",
      "ViaBTC",       "1THash&58Coin", "Okex",    "SlushPool", "Binance Pool",
      "Lubian.com",   "BitFury",    "BytePool",   "NovaBlock", "SpiderPool",
      "BitDeer",      "Buffett",    "TMSPool",    "WAYI.CN",   "Bitcoin.com",
      "BTC.TOP",      "Bitfarms",   "DPool",      "KanoPool",  "Sigmapool",
  };
  for (const char* p : kPools) reg.add(p, conventional_marker(p));
  // Shared-wallet aliases reported by the paper (Figure 8 caption).
  reg.add_alias("BitDeer", "BTC.com");
  reg.add_alias("Buffett", "Lubian.com");
  return reg;
}

}  // namespace cn::btc

// Blocks and consensus-level size constants.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "btc/amount.hpp"
#include "btc/header.hpp"
#include "btc/transaction.hpp"
#include "util/time.hpp"

namespace cn::btc {

/// Consensus constants (virtual-size accounting per BIP-141: one vbyte ==
/// four weight units; 4M weight cap == 1M vbytes).
inline constexpr std::uint64_t kMaxBlockVsize = 1'000'000;  // vbytes
/// Space reserved for the coinbase transaction in every template.
inline constexpr std::uint32_t kCoinbaseVsize = 200;

/// The coinbase transaction, reduced to what the audit reads from it:
/// the pool's marker string (scriptSig tag), the reward wallet, and the
/// collected amount (subsidy + fees).
struct Coinbase {
  std::string tag;            ///< pool marker, e.g. "/F2Pool/"
  Address reward_address{};   ///< wallet credited with the reward
  Satoshi reward{};           ///< subsidy + total fees
};

/// A mined block: ordered transactions plus the coinbase.
class Block {
 public:
  Block() = default;
  Block(std::uint64_t height, SimTime mined_at, Coinbase coinbase,
        std::vector<Transaction> txs);

  std::uint64_t height() const noexcept { return height_; }
  SimTime mined_at() const noexcept { return mined_at_; }
  const Coinbase& coinbase() const noexcept { return coinbase_; }

  /// Ordered non-coinbase transactions, position 0 first.
  std::span<const Transaction> txs() const noexcept { return txs_; }
  std::size_t tx_count() const noexcept { return txs_.size(); }
  bool is_empty() const noexcept { return txs_.empty(); }

  /// Sum of transaction vsizes (excluding the coinbase allowance).
  std::uint64_t total_vsize() const noexcept { return total_vsize_; }
  /// Sum of transaction fees.
  Satoshi total_fees() const noexcept { return total_fees_; }

  /// Position of a transaction in the block, if present.
  std::optional<std::size_t> position_of(const Txid& id) const noexcept;

  /// True if txs()[index] spends an output of an earlier transaction in
  /// this same block — the paper's in-block CPFP definition (§E).
  bool is_cpfp_at(std::size_t index) const;

  /// Indices of all in-block CPFP transactions.
  std::vector<std::size_t> cpfp_positions() const;

  /// Synthetic id of the coinbase transaction (derived from its fields);
  /// the first Merkle leaf, as in Bitcoin.
  Txid coinbase_id() const;

  /// Merkle root over [coinbase_id, txs...]: recomputed from content.
  Txid compute_merkle_root() const;

  /// Chain linkage. A block is *sealed* by Chain::append, which stamps a
  /// header committing to the previous block's hash and this block's
  /// Merkle root.
  bool sealed() const noexcept { return sealed_; }
  void seal(const BlockHash& prev_hash);
  /// Seals with a Merkle root recorded when the block was first sealed
  /// (the CNB1 loader's fast path — skips re-hashing every txid).
  /// Chain::verify_integrity recomputes roots and catches a wrong one.
  void restore_header(const Txid& merkle_root, const BlockHash& prev_hash);
  /// Requires sealed().
  const BlockHeader& header() const;
  BlockHash hash() const { return header().hash(); }

 private:
  std::uint64_t height_ = 0;
  SimTime mined_at_ = 0;
  Coinbase coinbase_{};
  std::vector<Transaction> txs_;
  std::uint64_t total_vsize_ = 0;
  Satoshi total_fees_{};
  BlockHeader header_{};
  bool sealed_ = false;
};

}  // namespace cn::btc

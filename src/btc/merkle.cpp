#include "btc/merkle.hpp"

#include "util/assert.hpp"
#include "util/sha256.hpp"

namespace cn::btc {

namespace {

Txid hash_pair(const Txid& left, const Txid& right) noexcept {
  std::uint8_t buf[64];
  std::copy(left.bytes.begin(), left.bytes.end(), buf);
  std::copy(right.bytes.begin(), right.bytes.end(), buf + 32);
  Txid out;
  out.bytes = sha256d(std::span<const std::uint8_t>(buf, sizeof(buf)));
  return out;
}

}  // namespace

Txid merkle_root(std::span<const Txid> leaves) noexcept {
  if (leaves.empty()) return kNullTxid;
  std::vector<Txid> level(leaves.begin(), leaves.end());
  while (level.size() > 1) {
    std::vector<Txid> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i < level.size(); i += 2) {
      const Txid& left = level[i];
      const Txid& right = i + 1 < level.size() ? level[i + 1] : level[i];
      next.push_back(hash_pair(left, right));
    }
    level = std::move(next);
  }
  return level[0];
}

std::vector<MerkleStep> merkle_proof(std::span<const Txid> leaves,
                                     std::size_t index) {
  CN_ASSERT(index < leaves.size());
  std::vector<MerkleStep> proof;
  std::vector<Txid> level(leaves.begin(), leaves.end());
  std::size_t pos = index;
  while (level.size() > 1) {
    const std::size_t sibling =
        pos % 2 == 0 ? (pos + 1 < level.size() ? pos + 1 : pos) : pos - 1;
    proof.push_back(MerkleStep{level[sibling], /*sibling_on_right=*/pos % 2 == 0});

    std::vector<Txid> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i < level.size(); i += 2) {
      const Txid& left = level[i];
      const Txid& right = i + 1 < level.size() ? level[i + 1] : level[i];
      next.push_back(hash_pair(left, right));
    }
    level = std::move(next);
    pos /= 2;
  }
  return proof;
}

bool merkle_verify(const Txid& leaf, std::span<const MerkleStep> proof,
                   const Txid& root) noexcept {
  Txid current = leaf;
  for (const MerkleStep& step : proof) {
    current = step.sibling_on_right ? hash_pair(current, step.sibling)
                                    : hash_pair(step.sibling, current);
  }
  return current == root;
}

}  // namespace cn::btc

// Block headers: the cryptographic spine of the chain. Each header
// commits to the previous header's hash, the Merkle root of the block's
// transactions (coinbase included), and the timestamp — so any
// tampering with history is detectable, exactly as in Bitcoin (minus
// proof-of-work difficulty, which plays no role in ordering audits).
#pragma once

#include <cstdint>

#include "btc/txid.hpp"
#include "util/time.hpp"

namespace cn::btc {

/// 32-byte block hash (same digest domain as transaction ids).
using BlockHash = Txid;

struct BlockHeader {
  BlockHash prev_hash{};   ///< null for the first block of a chain
  Txid merkle_root{};      ///< over coinbase id + tx ids, in order
  std::uint64_t height = 0;
  SimTime timestamp = 0;

  /// Double-SHA-256 over the serialized header fields.
  BlockHash hash() const noexcept;

  bool operator==(const BlockHeader&) const = default;
};

}  // namespace cn::btc

// Monetary amounts and fee-rates.
//
// Amounts are integer satoshi (1 BTC = 1e8 sat) exactly as in Bitcoin.
// Fee-rates are kept as exact rationals (fee, vsize) so that ordering
// transactions by fee-per-vbyte never suffers floating-point ties breaking
// differently across platforms; double conversions are provided for
// reporting. The paper quotes fee-rates in BTC/KB: 1e-5 BTC/KB == 1 sat/vB.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace cn::btc {

/// Integer satoshi amount. A plain strong typedef with arithmetic.
struct Satoshi {
  std::int64_t value = 0;

  constexpr Satoshi() = default;
  constexpr explicit Satoshi(std::int64_t v) noexcept : value(v) {}

  constexpr auto operator<=>(const Satoshi&) const = default;

  constexpr Satoshi operator+(Satoshi o) const noexcept { return Satoshi{value + o.value}; }
  constexpr Satoshi operator-(Satoshi o) const noexcept { return Satoshi{value - o.value}; }
  constexpr Satoshi& operator+=(Satoshi o) noexcept {
    value += o.value;
    return *this;
  }
  constexpr Satoshi& operator-=(Satoshi o) noexcept {
    value -= o.value;
    return *this;
  }

  constexpr bool is_negative() const noexcept { return value < 0; }

  double btc() const noexcept { return static_cast<double>(value) * 1e-8; }
};

inline constexpr std::int64_t kSatPerBtc = 100'000'000;
inline constexpr Satoshi kOneBtc{kSatPerBtc};

constexpr Satoshi from_btc_int(std::int64_t btc) noexcept {
  return Satoshi{btc * kSatPerBtc};
}

/// Exact fee-rate: fee in satoshi over virtual size in vbytes.
/// Comparison cross-multiplies in 128-bit so it is exact for any realistic
/// fee/size. A zero-vsize rate is invalid except for the default value.
class FeeRate {
 public:
  constexpr FeeRate() = default;
  constexpr FeeRate(Satoshi fee, std::uint64_t vsize_vb) noexcept
      : fee_(fee), vsize_(vsize_vb) {}

  /// Builds the canonical rate "n sat per vbyte".
  static constexpr FeeRate from_sat_per_vb(std::int64_t sat_per_vb) noexcept {
    return FeeRate(Satoshi{sat_per_vb}, 1);
  }

  constexpr Satoshi fee() const noexcept { return fee_; }
  constexpr std::uint64_t vsize() const noexcept { return vsize_; }
  constexpr bool valid() const noexcept { return vsize_ > 0; }

  /// sat/vB as double (reporting only; never used for ordering).
  double sat_per_vbyte() const noexcept;

  /// BTC/KB as double — the unit the paper's figures use.
  double btc_per_kb() const noexcept;

  /// Exact three-way comparison by fee/vsize; invalid rates compare
  /// lowest. Inline: fee-rate ordering dominates the mempool eviction
  /// index and the per-block template heap in the simulator.
  constexpr std::strong_ordering operator<=>(const FeeRate& o) const noexcept {
    if (vsize_ == 0 || o.vsize_ == 0) {
      // Invalid rates are the lowest; two invalid rates are equal.
      if (vsize_ == 0 && o.vsize_ == 0) return std::strong_ordering::equal;
      return vsize_ == 0 ? std::strong_ordering::less
                         : std::strong_ordering::greater;
    }
    const __int128 lhs = static_cast<__int128>(fee_.value) * o.vsize_;
    const __int128 rhs = static_cast<__int128>(o.fee_.value) * vsize_;
    if (lhs < rhs) return std::strong_ordering::less;
    if (lhs > rhs) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
  }
  constexpr bool operator==(const FeeRate& o) const noexcept {
    return (*this <=> o) == std::strong_ordering::equal;
  }

  std::string to_string() const;

 private:
  Satoshi fee_{};
  std::uint64_t vsize_ = 0;
};

/// The default relay floor norm III refers to: 1 sat/vB (== 1e-5 BTC/KB).
inline constexpr std::int64_t kDefaultMinRelaySatPerVb = 1;

}  // namespace cn::btc

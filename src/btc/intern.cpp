#include "btc/intern.hpp"

#include "util/assert.hpp"

namespace cn::btc {

AddressId AddressTable::intern(Address address) {
  const auto [it, inserted] =
      ids_.try_emplace(address, static_cast<AddressId>(by_id_.size()));
  if (inserted) by_id_.push_back(address);
  return it->second;
}

AddressId AddressTable::lookup(Address address) const noexcept {
  const auto it = ids_.find(address);
  return it == ids_.end() ? kNoAddressId : it->second;
}

const Address& AddressTable::at(AddressId id) const {
  CN_ASSERT(id < by_id_.size());
  return by_id_[id];
}

void AddressTable::reserve(std::size_t n) {
  by_id_.reserve(n);
  ids_.reserve(n);
}

std::size_t AddressTable::memory_bytes() const noexcept {
  // Vector payload plus a conservative per-node estimate for the hash
  // index (bucket pointer + node with key, value, and chain link).
  return by_id_.capacity() * sizeof(Address) +
         ids_.size() * (sizeof(Address) + sizeof(AddressId) + 2 * sizeof(void*)) +
         ids_.bucket_count() * sizeof(void*);
}

}  // namespace cn::btc

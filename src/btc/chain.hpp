// The blockchain: an append-only list of blocks with a transaction index.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "btc/block.hpp"

namespace cn::btc {

/// Location of a committed transaction.
struct TxLocation {
  std::uint64_t block_height = 0;
  std::size_t position = 0;  ///< index within the block's tx list
};

class Chain {
 public:
  Chain() = default;
  /// @p genesis_height lets data sets start at realistic block heights
  /// (e.g. 610691 for the paper's data set C).
  explicit Chain(std::uint64_t genesis_height) : next_height_(genesis_height) {}

  /// Appends a block; its height must equal next_height(). The block is
  /// *sealed*: its header is stamped with the previous block's hash and
  /// the Merkle root of its contents.
  void append(Block block);

  /// Hash of the most recent block (null for an empty chain).
  BlockHash tip_hash() const noexcept;

  /// Recomputes every Merkle root and verifies header linkage; false if
  /// any block's content no longer matches its header or the chain of
  /// prev-hashes is broken.
  bool verify_integrity() const;

  std::uint64_t next_height() const noexcept { return next_height_; }
  std::size_t size() const noexcept { return blocks_.size(); }
  bool empty() const noexcept { return blocks_.empty(); }

  std::span<const Block> blocks() const noexcept { return blocks_; }
  const Block& at_height(std::uint64_t height) const;
  const Block& front() const;
  const Block& back() const;

  /// Where (if anywhere) a transaction was committed.
  std::optional<TxLocation> locate(const Txid& id) const noexcept;

  /// The committed transaction itself, or nullptr.
  const Transaction* find_tx(const Txid& id) const noexcept;

  /// Total committed (non-coinbase) transactions.
  std::uint64_t total_tx_count() const noexcept { return total_txs_; }

  /// Pre-sizes the transaction index; bulk loaders (CNB1) know the
  /// final transaction count before the first append.
  void reserve_txs(std::size_t count) { tx_index_.reserve(count); }

  /// Number of blocks with zero non-coinbase transactions.
  std::uint64_t empty_block_count() const noexcept;

 private:
  std::vector<Block> blocks_;
  std::uint64_t next_height_ = 0;
  std::uint64_t total_txs_ = 0;
  std::unordered_map<Txid, TxLocation> tx_index_;
};

}  // namespace cn::btc

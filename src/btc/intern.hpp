// Address interning: compact dense ids for the columnar audit layer.
//
// The audit's hot paths (self-interest extraction, watched-address
// screens) compare wallet identities millions of times; an AddressTable
// assigns each distinct Address a dense 32-bit AddressId once so the
// comparisons become integer equality over flat arrays. Importers can
// build the table while they parse (io::import_chain), so downstream
// consumers never re-hash the address universe.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "btc/txid.hpp"

namespace cn::btc {

/// Dense interned wallet id, assigned in first-seen order.
using AddressId = std::uint32_t;
inline constexpr AddressId kNoAddressId = ~AddressId{0};

class AddressTable {
 public:
  /// Returns the id of @p address, assigning the next dense id on first
  /// sight.
  AddressId intern(Address address);

  /// Id of @p address, or kNoAddressId if it was never interned.
  AddressId lookup(Address address) const noexcept;

  const Address& at(AddressId id) const;

  std::size_t size() const noexcept { return by_id_.size(); }
  bool empty() const noexcept { return by_id_.empty(); }
  void reserve(std::size_t n);

  /// Approximate heap footprint (table + hash index), for telemetry.
  std::size_t memory_bytes() const noexcept;

 private:
  std::vector<Address> by_id_;
  std::unordered_map<Address, AddressId> ids_;
};

}  // namespace cn::btc

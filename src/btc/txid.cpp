#include "btc/txid.hpp"

#include <algorithm>
#include <cstring>

#include "util/hex.hpp"
#include "util/sha256.hpp"

namespace cn::btc {

std::string Txid::to_hex() const {
  return hex_encode(std::span<const std::uint8_t>(bytes.data(), bytes.size()));
}

std::optional<Txid> Txid::from_hex(std::string_view hex) {
  const auto bytes = hex_decode(hex);
  if (!bytes.has_value() || bytes->size() != 32) return std::nullopt;
  Txid id;
  std::copy(bytes->begin(), bytes->end(), id.bytes.begin());
  return id;
}

Txid Txid::hash_of(std::string_view preimage) noexcept {
  Txid id;
  const Sha256Digest digest = sha256d(preimage);
  id.bytes = digest;
  return id;
}

std::string Address::to_string() const {
  std::uint8_t raw[8];
  for (int i = 0; i < 8; ++i) raw[i] = static_cast<std::uint8_t>(value >> (56 - 8 * i));
  return "addr:" + hex_encode(std::span<const std::uint8_t>(raw, 8));
}

Address Address::derive(std::string_view label) noexcept {
  const Sha256Digest digest = sha256(label);
  std::uint64_t v;
  std::memcpy(&v, digest.data(), sizeof(v));
  // Reserve 0 as the null address.
  if (v == 0) v = 1;
  return Address{v};
}

}  // namespace cn::btc

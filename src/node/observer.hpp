// The observer node: a full node configured not to mine (paper §3).
// It receives transaction broadcasts, keeps its own Mempool, records a
// MempoolStat every 15 s, and logs each transaction's first-seen time —
// the t_i used by the pairwise violation analysis (§4.2.1).
#pragma once

#include <optional>
#include <unordered_map>

#include "btc/block.hpp"
#include "node/mempool.hpp"
#include "node/snapshot.hpp"

namespace cn::node {

class ObserverNode {
 public:
  /// @p min_relay_sat_per_vb = 0 reproduces the data set B configuration
  /// (accept zero-fee transactions); the default reproduces data set A.
  explicit ObserverNode(std::int64_t min_relay_sat_per_vb = btc::kDefaultMinRelaySatPerVb)
      : mempool_(min_relay_sat_per_vb) {}

  /// Delivers a broadcast transaction at local time @p now. Returns the
  /// mempool acceptance verdict. First-seen time is logged on acceptance.
  AcceptResult on_transaction(const btc::Transaction& tx, SimTime now);

  /// Move overload: the simulator hands over its in-flight copy.
  AcceptResult on_transaction(btc::Transaction&& tx, SimTime now);

  /// Processes a newly mined block: evicts committed transactions.
  void on_block(const btc::Block& block);

  /// Same eviction given just the mined ids — the sharded engine ships
  /// txid lists across its lane boundary instead of whole blocks.
  void on_block_txids(std::span<const btc::Txid> mined);

  /// Records a periodic snapshot (caller controls the 15 s cadence).
  void record_snapshot(SimTime now);

  /// First time this observer saw @p id, if ever accepted.
  std::optional<SimTime> first_seen(const btc::Txid& id) const noexcept;

  /// Full first-seen log (for data-set export).
  const std::unordered_map<btc::Txid, SimTime>& first_seen_map() const noexcept {
    return first_seen_;
  }

  const Mempool& mempool() const noexcept { return mempool_; }
  const SnapshotSeries& snapshots() const noexcept { return series_; }

  /// Count of transactions this node rejected for being below its floor.
  std::uint64_t below_floor_count() const noexcept { return below_floor_; }

 private:
  Mempool mempool_;
  SnapshotSeries series_;
  std::unordered_map<btc::Txid, SimTime> first_seen_;
  std::uint64_t below_floor_ = 0;
};

}  // namespace cn::node

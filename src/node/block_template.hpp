// GetBlockTemplate-style block construction (the source of norms I & II).
//
// Reimplements the greedy ancestor-package selection of Bitcoin Core's
// `addPackageTxs`: transactions are repeatedly chosen by the highest
// package fee-rate (the transaction plus its not-yet-selected unconfirmed
// ancestors), parents are placed before children, and selection stops when
// nothing else fits in the virtual-size budget.
//
// Miner policies hook in exactly the way Bitcoin Core exposes:
//  * fee deltas (`prioritisetransaction`): per-txid satoshi adjustments
//    added to the fee used for ordering but not to the fee collected
//    on-chain — this is how dark-fee acceleration is implemented by pools;
//  * an exclusion set (censorship / deceleration);
//  * a minimum template fee-rate (norm III's floor at template level).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "btc/amount.hpp"
#include "btc/block.hpp"
#include "node/mempool.hpp"

namespace cn::node {

struct TemplateOptions {
  /// Budget for transactions (the coinbase allowance is already deducted).
  std::uint64_t max_vsize = btc::kMaxBlockVsize - btc::kCoinbaseVsize;

  /// Packages whose effective fee-rate is below this are not considered.
  /// Invalid (default) means no floor.
  btc::FeeRate min_rate{};

  /// Per-transaction fee adjustment used for *ordering only*
  /// (Bitcoin Core's `prioritisetransaction`); may be negative.
  std::unordered_map<btc::Txid, btc::Satoshi> fee_deltas;

  /// Transactions a policy refuses to mine.
  std::unordered_set<btc::Txid> exclude;

  /// Aging bonus (the paper's §6.1 "should waiting time be considered?"
  /// made concrete): the effective fee used for ordering is multiplied by
  /// (1 + age_weight_per_hour * hours_waiting). 0 keeps the pure
  /// fee-rate norm. Requires `now` when non-zero.
  double age_weight_per_hour = 0.0;
  SimTime now = 0;

  /// BitcoinF-style fair queue: above the `min_rate` floor, order by
  /// arrival time (first-come-first-served) instead of fee-rate. The
  /// floor, exclusion set and vsize budget still apply; parents still
  /// precede children. Default off preserves the fee-rate norm (and
  /// byte-identical templates).
  bool fifo = false;
};

struct BlockTemplate {
  std::vector<btc::Transaction> txs;  ///< in block order
  std::uint64_t total_vsize = 0;
  btc::Satoshi total_fees{};          ///< real (public) fees only
};

/// Builds a template from @p mempool under @p options. Deterministic:
/// exact-rational fee-rate comparison with txid tie-breaking.
BlockTemplate build_template(const Mempool& mempool, const TemplateOptions& options);

}  // namespace cn::node

#include "node/legacy_priority.hpp"

#include <algorithm>
#include <unordered_set>

namespace cn::node {

double coin_age_priority(const btc::Transaction& tx, SimTime now) noexcept {
  const double age = static_cast<double>(now >= tx.issued() ? now - tx.issued() : 0) + 1.0;
  const double value = static_cast<double>(tx.total_output().value);
  return value * age / static_cast<double>(tx.vsize());
}

BlockTemplate build_legacy_template(const Mempool& mempool, SimTime now,
                                    const LegacyTemplateOptions& options) {
  std::vector<const MempoolEntry*> entries = mempool.entries_by_arrival();
  std::stable_sort(entries.begin(), entries.end(),
                   [now](const MempoolEntry* a, const MempoolEntry* b) {
                     return coin_age_priority(a->tx, now) >
                            coin_age_priority(b->tx, now);
                   });

  BlockTemplate out;
  std::unordered_set<btc::Txid> selected;
  for (const MempoolEntry* e : entries) {
    if (selected.contains(e->tx.id())) continue;

    // Pull in unselected in-mempool ancestors first (validity requires
    // parents to precede children regardless of the ordering norm).
    std::vector<const MempoolEntry*> package;
    for (const MempoolEntry* anc : mempool.ancestors_of(e->tx.id())) {
      if (!selected.contains(anc->tx.id())) package.push_back(anc);
    }
    // Ancestors returned child-to-parent along the walk; emit oldest first.
    std::reverse(package.begin(), package.end());
    package.push_back(e);

    std::uint64_t package_vsize = 0;
    for (const MempoolEntry* p : package) package_vsize += p->tx.vsize();
    if (out.total_vsize + package_vsize > options.max_vsize) continue;

    for (const MempoolEntry* p : package) {
      selected.insert(p->tx.id());
      out.total_vsize += p->tx.vsize();
      out.total_fees += p->tx.fee();
      out.txs.push_back(p->tx);
    }
  }
  return out;
}

}  // namespace cn::node

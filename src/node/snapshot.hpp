// Mempool snapshot series — the observer's periodic (15 s) record of
// Mempool state, and the congestion statistics the paper derives from it
// (Figures 3 and 9).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/time.hpp"

namespace cn::node {

/// One periodic observation of the Mempool.
struct MempoolStat {
  SimTime time = 0;
  std::uint64_t tx_count = 0;
  std::uint64_t total_vsize = 0;  ///< aggregate vbytes of queued txs
};

/// Congestion level bins used throughout §4.1.2 (Mempool size relative to
/// the 1 MB block budget): <1 MB, (1,2] MB, (2,4] MB, >4 MB.
enum class CongestionLevel : int {
  kNone = 0,     ///< <= 1 MB: everything fits in the next block
  kLow = 1,      ///< (1, 2] MB
  kMedium = 2,   ///< (2, 4] MB
  kHigh = 3,     ///< > 4 MB
};

/// @p unit_vsize is the block budget the bins are relative to (1 MB on the
/// real network; scaled-down simulations pass their block budget).
CongestionLevel congestion_level(std::uint64_t total_vsize,
                                 std::uint64_t unit_vsize = 1'000'000) noexcept;

/// A window of wall-clock time with no Mempool observations — a node
/// restart or outage in the paper's live measurement. Derived from the
/// snapshot series against its expected cadence.
struct SnapshotGap {
  SimTime from = 0;  ///< last observation before the gap
  SimTime to = 0;    ///< first observation after the gap
};

class SnapshotSeries {
 public:
  void record(MempoolStat stat);

  std::span<const MempoolStat> stats() const noexcept { return stats_; }
  std::size_t size() const noexcept { return stats_.size(); }
  bool empty() const noexcept { return stats_.empty(); }

  /// Fraction of snapshots with total vsize strictly above @p vsize
  /// (paper: "Mempool above 1 MB for ~75% of the time" in data set A).
  double fraction_above(std::uint64_t vsize) const noexcept;

  /// Peak queued vsize over the whole series.
  std::uint64_t max_vsize() const noexcept;

  /// The congestion level at time @p t: level of the most recent snapshot
  /// at or before t (kNone before the first snapshot).
  CongestionLevel level_at(SimTime t, std::uint64_t unit_vsize = 1'000'000) const noexcept;

  /// Batched level_at: one level per entry of @p times, in input order.
  /// Ascending runs (the common case: first-seen series come out of a
  /// chain scan) advance a cursor instead of paying a binary search per
  /// query; an out-of-order entry falls back to the search, so the
  /// result always equals calling level_at per element.
  std::vector<CongestionLevel> levels_for(std::span<const SimTime> times,
                                          std::uint64_t unit_vsize = 1'000'000) const;

  /// Windows where consecutive observations are more than
  /// @p gap_factor * @p expected_cadence apart — the observer was down.
  /// Requires expected_cadence > 0.
  std::vector<SnapshotGap> gaps(SimTime expected_cadence = 15,
                                double gap_factor = 2.0) const;

 private:
  std::vector<MempoolStat> stats_;  // strictly increasing time
};

}  // namespace cn::node

#include "node/observer.hpp"

namespace cn::node {

AcceptResult ObserverNode::on_transaction(const btc::Transaction& tx, SimTime now) {
  const AcceptResult result = mempool_.accept(tx, now);
  switch (result) {
    case AcceptResult::kAccepted:
      first_seen_.emplace(tx.id(), now);
      break;
    case AcceptResult::kBelowMinFeeRate:
      ++below_floor_;
      break;
    case AcceptResult::kDuplicate:
    case AcceptResult::kConflictRejected:
    case AcceptResult::kMempoolFull:
      break;
  }
  return result;
}

void ObserverNode::on_block(const btc::Block& block) {
  for (const btc::Transaction& tx : block.txs()) mempool_.remove(tx.id());
}

void ObserverNode::record_snapshot(SimTime now) {
  series_.record(MempoolStat{now, mempool_.size(), mempool_.total_vsize()});
}

std::optional<SimTime> ObserverNode::first_seen(const btc::Txid& id) const noexcept {
  const auto it = first_seen_.find(id);
  if (it == first_seen_.end()) return std::nullopt;
  return it->second;
}

}  // namespace cn::node

#include "node/observer.hpp"

#include <utility>

namespace cn::node {

AcceptResult ObserverNode::on_transaction(const btc::Transaction& tx, SimTime now) {
  return on_transaction(btc::Transaction(tx), now);
}

AcceptResult ObserverNode::on_transaction(btc::Transaction&& tx, SimTime now) {
  const btc::Txid id = tx.id();
  const AcceptResult result = mempool_.accept(std::move(tx), now);
  switch (result) {
    case AcceptResult::kAccepted:
      first_seen_.emplace(id, now);
      break;
    case AcceptResult::kBelowMinFeeRate:
      ++below_floor_;
      break;
    case AcceptResult::kDuplicate:
    case AcceptResult::kConflictRejected:
    case AcceptResult::kMempoolFull:
      break;
  }
  return result;
}

void ObserverNode::on_block(const btc::Block& block) {
  for (const btc::Transaction& tx : block.txs()) mempool_.remove(tx.id());
}

void ObserverNode::on_block_txids(std::span<const btc::Txid> mined) {
  for (const btc::Txid& id : mined) mempool_.remove(id);
}

void ObserverNode::record_snapshot(SimTime now) {
  series_.record(MempoolStat{now, mempool_.size(), mempool_.total_vsize()});
}

std::optional<SimTime> ObserverNode::first_seen(const btc::Txid& id) const noexcept {
  const auto it = first_seen_.find(id);
  if (it == first_seen_.end()) return std::nullopt;
  return it->second;
}

}  // namespace cn::node

#include "node/block_template.hpp"

#include <algorithm>
#include <queue>

#include "util/assert.hpp"

namespace cn::node {

namespace {

struct PackageScore {
  btc::FeeRate rate{};       ///< effective package fee-rate
  btc::Txid id{};            ///< the package's representative (descendant)
  SimTime arrival = 0;       ///< representative's mempool arrival (FIFO mode)
  bool fifo = false;         ///< order by arrival instead of fee-rate

  /// Max-heap ordering with deterministic txid tie-break. In FIFO mode
  /// the earliest arrival tops the heap; the rate is still carried for
  /// the floor check but does not order.
  bool operator<(const PackageScore& o) const noexcept {
    if (fifo) {
      if (arrival != o.arrival) return arrival > o.arrival;
      return id > o.id;  // lower txid wins ties
    }
    if (rate != o.rate) return rate < o.rate;
    return id > o.id;  // lower txid wins ties
  }
};

class TemplateBuilder {
 public:
  TemplateBuilder(const Mempool& mempool, const TemplateOptions& options)
      : mempool_(mempool), options_(options) {}

  BlockTemplate build() {
    seed_heap();
    BlockTemplate out;
    std::vector<const MempoolEntry*> package;  // reused across iterations
    while (!heap_.empty()) {
      const PackageScore top = heap_.top();
      heap_.pop();
      if (selected_.contains(top.id) || dropped_.contains(top.id)) continue;

      // Recompute: ancestors may have been selected since this entry was
      // pushed, which only *raises* the package rate (lazy invalidation).
      const btc::FeeRate current = package_rate(top.id, package);
      if (current != top.rate) {
        heap_.push(PackageScore{current, top.id, top.arrival, top.fifo});
        continue;
      }
      if (package.empty()) {
        // Package depends on a censored ancestor: permanently unmineable.
        dropped_.insert(top.id);
        continue;
      }

      if (options_.min_rate.valid() && current < options_.min_rate) {
        // Heap is rate-ordered; everything below the floor from here on.
        // (Entries may be stale-low, so drop just this one and continue.)
        dropped_.insert(top.id);
        continue;
      }

      std::uint64_t package_vsize = 0;
      for (const MempoolEntry* e : package) package_vsize += e->tx.vsize();
      if (out.total_vsize + package_vsize > options_.max_vsize) {
        dropped_.insert(top.id);  // space only shrinks; never fits later
        continue;
      }

      append_package(package, out);
    }
    return out;
  }

 private:
  void seed_heap() {
    // Bulk-build the heap in O(n): the pop order of a binary heap under a
    // strict total order (txid tie-break makes PackageScore one) does not
    // depend on how the heap was built, so this matches per-push seeding.
    std::vector<PackageScore> seed;
    seed.reserve(mempool_.size());
    std::vector<const MempoolEntry*> package;
    mempool_.for_each_entry([&](const MempoolEntry& entry) {
      const btc::Txid& id = entry.tx.id();
      if (options_.exclude.contains(id)) return;
      // Parentless entries (the overwhelmingly common case) score as their
      // own effective fee-rate — no mempool lookups at all. The ancestry
      // walk runs only for the few CPFP-linked entries.
      const btc::FeeRate rate =
          entry.in_pool_parents == 0
              ? btc::FeeRate(effective_fee(entry), entry.tx.vsize())
              : package_rate(id, package);
      seed.push_back(PackageScore{rate, id, entry.arrival, options_.fifo});
    });
    heap_ = std::priority_queue<PackageScore>(std::less<PackageScore>{},
                                              std::move(seed));
  }

  btc::Satoshi effective_fee(const MempoolEntry& entry) const {
    // Fast path: no acceleration deltas and no age boost configured means
    // the effective fee is the real fee (fees are non-negative).
    if (options_.fee_deltas.empty() && options_.age_weight_per_hour <= 0.0) {
      return entry.tx.fee();
    }
    btc::Satoshi fee = entry.tx.fee();
    const auto it = options_.fee_deltas.find(entry.tx.id());
    if (it != options_.fee_deltas.end()) fee += it->second;
    if (options_.age_weight_per_hour > 0.0 && options_.now > entry.arrival) {
      const double hours =
          static_cast<double>(options_.now - entry.arrival) / 3600.0;
      const double boosted = static_cast<double>(fee.value) *
                             (1.0 + options_.age_weight_per_hour * hours);
      fee = btc::Satoshi{static_cast<std::int64_t>(boosted)};
    }
    if (fee.value < 0) fee = btc::Satoshi{0};
    return fee;
  }

  /// Effective fee-rate of the package rooted at @p id; fills @p package
  /// with the entry and its unselected ancestors (unordered). Returns an
  /// invalid rate if the package contains an excluded ancestor.
  btc::FeeRate package_rate(const btc::Txid& id,
                            std::vector<const MempoolEntry*>& package) const {
    package.clear();
    const MempoolEntry* self = mempool_.find(id);
    CN_ASSERT(self != nullptr);
    package.push_back(self);
    if (self->in_pool_parents == 0) {
      // No unconfirmed ancestry (the overwhelmingly common case): the
      // package is the transaction alone. Skips the BFS and its
      // allocations.
      return btc::FeeRate(effective_fee(*self), self->tx.vsize());
    }
    for (const MempoolEntry* anc : mempool_.ancestors_of(id)) {
      if (selected_.contains(anc->tx.id())) continue;
      if (options_.exclude.contains(anc->tx.id())) {
        package.clear();
        return btc::FeeRate{};  // unmineable: would pull in a censored tx
      }
      package.push_back(anc);
    }
    btc::Satoshi fee{};
    std::uint64_t vsize = 0;
    for (const MempoolEntry* e : package) {
      fee += effective_fee(*e);
      vsize += e->tx.vsize();
    }
    return btc::FeeRate(fee, vsize);
  }

  /// Appends the package with parents before children.
  void append_package(std::vector<const MempoolEntry*>& package, BlockTemplate& out) {
    // Topological order: repeatedly emit entries whose in-package parents
    // are all already emitted. Packages are tiny (chain depth <= a few),
    // so the quadratic scan is immaterial.
    std::vector<const MempoolEntry*> pending(package.begin(), package.end());
    // Deterministic starting order.
    std::sort(pending.begin(), pending.end(),
              [](const MempoolEntry* a, const MempoolEntry* b) {
                return a->tx.id() < b->tx.id();
              });
    while (!pending.empty()) {
      bool progressed = false;
      for (auto it = pending.begin(); it != pending.end();) {
        const MempoolEntry* e = *it;
        bool ready = true;
        for (const btc::TxInput& in : e->tx.inputs()) {
          if (in.prev_txid.is_null()) continue;
          for (const MempoolEntry* other : pending) {
            if (other != e && other->tx.id() == in.prev_txid) {
              ready = false;
              break;
            }
          }
          if (!ready) break;
        }
        if (ready) {
          selected_.insert(e->tx.id());
          out.total_vsize += e->tx.vsize();
          out.total_fees += e->tx.fee();  // real fee, not effective
          out.txs.push_back(e->tx);
          it = pending.erase(it);
          progressed = true;
        } else {
          ++it;
        }
      }
      CN_ASSERT(progressed);  // a cycle would be a corrupt mempool
    }
  }

  const Mempool& mempool_;
  const TemplateOptions& options_;
  std::priority_queue<PackageScore> heap_;
  std::unordered_set<btc::Txid> selected_;
  std::unordered_set<btc::Txid> dropped_;
};

}  // namespace

BlockTemplate build_template(const Mempool& mempool, const TemplateOptions& options) {
  return TemplateBuilder(mempool, options).build();
}

}  // namespace cn::node

#include "node/fee_estimator.hpp"

#include <algorithm>

#include "stats/descriptive.hpp"
#include "util/assert.hpp"

namespace cn::node {

FeeEstimator::FeeEstimator(std::size_t window_blocks)
    : window_blocks_(window_blocks) {
  CN_ASSERT(window_blocks_ > 0);
}

void FeeEstimator::on_block(const btc::Block& block) {
  std::vector<double> rates;
  rates.reserve(block.tx_count());
  for (const btc::Transaction& tx : block.txs()) {
    rates.push_back(tx.fee_rate().sat_per_vbyte());
  }
  per_block_rates_.push_back(std::move(rates));
  while (per_block_rates_.size() > window_blocks_) per_block_rates_.pop_front();
}

double FeeEstimator::recommend_sat_per_vb(double percentile) const {
  CN_ASSERT(percentile >= 0.0 && percentile <= 1.0);
  std::vector<double> all;
  for (const auto& rates : per_block_rates_) {
    all.insert(all.end(), rates.begin(), rates.end());
  }
  if (all.empty()) return 1.0;
  return stats::quantile(all, percentile);
}

std::size_t FeeEstimator::sample_count() const noexcept {
  std::size_t n = 0;
  for (const auto& rates : per_block_rates_) n += rates.size();
  return n;
}

}  // namespace cn::node

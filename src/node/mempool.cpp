#include "node/mempool.hpp"

#include <algorithm>

#include "obs/registry.hpp"
#include "util/assert.hpp"

namespace cn::node {

namespace {

bool is_real_outpoint(const btc::TxInput& in) { return !in.prev_txid.is_null(); }

/// Admission/eviction telemetry (DESIGN.md §10), aggregated across every
/// Mempool instance in the process (the per-instance evicted_/replaced_/
/// expired_ members remain the authoritative per-pool numbers).
struct MempoolMetrics {
  obs::Counter accepted{"node.mempool.accepted"};
  obs::Counter rejected_duplicate{"node.mempool.rejected_duplicate"};
  obs::Counter rejected_min_fee{"node.mempool.rejected_min_fee"};
  obs::Counter rejected_conflict{"node.mempool.rejected_conflict"};
  obs::Counter rejected_full{"node.mempool.rejected_full"};
  obs::Counter evicted{"node.mempool.evicted"};
  obs::Counter replaced{"node.mempool.replaced"};
  obs::Counter expired{"node.mempool.expired"};
};

MempoolMetrics& metrics() {
  static MempoolMetrics* m = new MempoolMetrics();  // interned once per process
  return *m;
}

}  // namespace

std::vector<btc::Txid> Mempool::conflicts_of(const btc::Transaction& tx) const {
  // Transactions have a handful of inputs at most, so dedup by linear
  // scan; this runs once per accept() and must not allocate when there
  // are no conflicts (the overwhelmingly common case).
  std::vector<btc::Txid> out;
  for (const btc::TxInput& in : tx.inputs()) {
    if (!is_real_outpoint(in)) continue;
    const auto it = spenders_.find(Outpoint{in.prev_txid, in.prev_vout});
    if (it == spenders_.end()) continue;
    if (std::find(out.begin(), out.end(), it->second) == out.end())
      out.push_back(it->second);
  }
  return out;
}

bool Mempool::replacement_allowed(const btc::Transaction& tx,
                                  const std::vector<btc::Txid>& conflicts) const {
  // Simplified BIP-125: the replacement must pay strictly more in absolute
  // fee than everything it evicts (conflicts plus their descendants), and
  // offer a strictly higher fee-rate than each directly conflicting tx.
  btc::Satoshi evicted_fees{};
  for (const btc::Txid& id : conflicts) {
    const auto it = entries_.find(id);
    CN_ASSERT(it != entries_.end());
    if (tx.fee_rate() <= it->second.tx.fee_rate()) return false;
    evicted_fees += it->second.tx.fee();
    for (const btc::Txid& desc : descendants_of(id)) {
      const auto dit = entries_.find(desc);
      if (dit != entries_.end()) evicted_fees += dit->second.tx.fee();
    }
  }
  return tx.fee() > evicted_fees;
}

bool Mempool::make_room(const btc::Transaction& incoming) {
  if (limits_.max_vsize == 0) return true;
  while (total_vsize_ + incoming.vsize() > limits_.max_vsize) {
    if (entries_.empty()) return incoming.vsize() <= limits_.max_vsize;
    // Evict the lowest fee-rate entry (with its descendants): the
    // eviction floor is the front of the fee-rate index.
    const auto floor_it = by_rate_.begin();
    // A full pool only admits transactions that beat its floor.
    if (incoming.fee_rate() <= floor_it->first) return false;
    // Copy before remove_subtree: unlink erases the index node.
    const btc::Txid worst_id = floor_it->second;
    ++evicted_;
    metrics().evicted.add();
    remove_subtree(worst_id);
  }
  return true;
}

AcceptResult Mempool::accept(btc::Transaction tx, SimTime now) {
  MempoolMetrics& m = metrics();
  if (entries_.contains(tx.id())) {
    m.rejected_duplicate.add();
    return AcceptResult::kDuplicate;
  }
  if (min_rate_.valid() && min_rate_.fee().value > 0 && tx.fee_rate() < min_rate_) {
    m.rejected_min_fee.add();
    return AcceptResult::kBelowMinFeeRate;
  }

  const std::vector<btc::Txid> conflicts = conflicts_of(tx);
  if (!conflicts.empty()) {
    if (!replacement_allowed(tx, conflicts)) {
      m.rejected_conflict.add();
      return AcceptResult::kConflictRejected;
    }
    for (const btc::Txid& id : conflicts) {
      ++replaced_;
      m.replaced.add();
      remove_subtree(id);
    }
  }

  if (!make_room(tx)) {
    m.rejected_full.add();
    return AcceptResult::kMempoolFull;
  }

  total_vsize_ += tx.vsize();
  const btc::Txid id = tx.id();
  std::uint32_t in_pool_parents = 0;
  for (const btc::TxInput& in : tx.inputs()) {
    if (!is_real_outpoint(in)) continue;
    children_[in.prev_txid].push_back(id);
    spenders_.emplace(Outpoint{in.prev_txid, in.prev_vout}, id);
    if (entries_.contains(in.prev_txid)) ++in_pool_parents;
  }
  by_rate_.emplace(tx.fee_rate(), id);
  entries_.emplace(id, MempoolEntry{std::move(tx), now, in_pool_parents});
  m.accepted.add();
  return AcceptResult::kAccepted;
}

void Mempool::unlink(const btc::Txid& id) {
  const auto it = entries_.find(id);
  CN_ASSERT(it != entries_.end());
  // The departing parent's still-queued children lose one in-pool parent
  // each (one children_ element exists per spending input, matching the
  // per-input increment in accept()).
  if (const auto kit = children_.find(id); kit != children_.end()) {
    for (const btc::Txid& child : kit->second) {
      const auto cit = entries_.find(child);
      if (cit != entries_.end() && cit->second.in_pool_parents > 0) {
        --cit->second.in_pool_parents;
      }
    }
  }
  total_vsize_ -= it->second.tx.vsize();
  by_rate_.erase({it->second.tx.fee_rate(), id});
  for (const btc::TxInput& in : it->second.tx.inputs()) {
    if (!is_real_outpoint(in)) continue;
    const auto cit = children_.find(in.prev_txid);
    if (cit != children_.end()) {
      auto& kids = cit->second;
      kids.erase(std::remove(kids.begin(), kids.end(), id), kids.end());
      if (kids.empty()) children_.erase(cit);
    }
    const auto sit = spenders_.find(Outpoint{in.prev_txid, in.prev_vout});
    if (sit != spenders_.end() && sit->second == id) spenders_.erase(sit);
  }
  entries_.erase(it);
}

void Mempool::remove_subtree(const btc::Txid& id) {
  const std::vector<btc::Txid> descendants = descendants_of(id);
  // Remove deepest-first is unnecessary (unlink is order-independent).
  unlink(id);
  for (const btc::Txid& d : descendants) {
    if (entries_.contains(d)) unlink(d);
  }
}

bool Mempool::remove(const btc::Txid& id) {
  if (!entries_.contains(id)) return false;
  unlink(id);
  return true;
}

std::vector<btc::Txid> Mempool::expire_before(SimTime cutoff) {
  std::vector<btc::Txid> stale;
  for (const auto& [id, entry] : entries_) {
    if (entry.arrival < cutoff) stale.push_back(id);
  }
  std::vector<btc::Txid> dropped;
  for (const btc::Txid& id : stale) {
    if (!entries_.contains(id)) continue;  // already gone as a descendant
    for (const btc::Txid& d : descendants_of(id)) dropped.push_back(d);
    dropped.push_back(id);
    remove_subtree(id);
    ++expired_;
    metrics().expired.add();
  }
  return dropped;
}

bool Mempool::contains(const btc::Txid& id) const noexcept {
  return entries_.contains(id);
}

const MempoolEntry* Mempool::find(const btc::Txid& id) const noexcept {
  const auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second;
}

void Mempool::for_each(const std::function<void(const MempoolEntry&)>& fn) const {
  for (const auto& [id, entry] : entries_) fn(entry);
}

std::vector<const MempoolEntry*> Mempool::entries_by_arrival() const {
  std::vector<const MempoolEntry*> out;
  out.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) out.push_back(&entry);
  std::sort(out.begin(), out.end(),
            [](const MempoolEntry* a, const MempoolEntry* b) {
              if (a->arrival != b->arrival) return a->arrival < b->arrival;
              return a->tx.id() < b->tx.id();  // deterministic tie-break
            });
  return out;
}

std::vector<const MempoolEntry*> Mempool::ancestors_of(const btc::Txid& id) const {
  std::vector<const MempoolEntry*> out;
  std::vector<btc::Txid> frontier{id};
  std::unordered_set<btc::Txid> seen;
  while (!frontier.empty()) {
    const btc::Txid cur = frontier.back();
    frontier.pop_back();
    const auto it = entries_.find(cur);
    if (it == entries_.end()) continue;  // parent already confirmed
    for (const btc::TxInput& in : it->second.tx.inputs()) {
      if (!is_real_outpoint(in)) continue;
      if (seen.contains(in.prev_txid)) continue;
      const auto pit = entries_.find(in.prev_txid);
      if (pit == entries_.end()) continue;
      seen.insert(in.prev_txid);
      out.push_back(&pit->second);
      frontier.push_back(in.prev_txid);
    }
  }
  return out;
}

std::vector<const MempoolEntry*> Mempool::children_of(const btc::Txid& id) const {
  std::vector<const MempoolEntry*> out;
  const auto it = children_.find(id);
  if (it == children_.end()) return out;
  for (const btc::Txid& child : it->second) {
    const auto eit = entries_.find(child);
    if (eit != entries_.end()) out.push_back(&eit->second);
  }
  return out;
}

std::vector<btc::Txid> Mempool::descendants_of(const btc::Txid& id) const {
  std::vector<btc::Txid> out;
  std::vector<btc::Txid> frontier{id};
  std::unordered_set<btc::Txid> seen;
  while (!frontier.empty()) {
    const btc::Txid cur = frontier.back();
    frontier.pop_back();
    const auto it = children_.find(cur);
    if (it == children_.end()) continue;
    for (const btc::Txid& child : it->second) {
      if (seen.contains(child)) continue;
      if (!entries_.contains(child)) continue;
      seen.insert(child);
      out.push_back(child);
      frontier.push_back(child);
    }
  }
  return out;
}

}  // namespace cn::node

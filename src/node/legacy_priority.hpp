// Pre-April-2016 block construction: coin-age "priority" ordering.
//
// Before Bitcoin Core 0.12.x moved fully to fee-rate ordering, templates
// were filled by the priority metric
//     priority = sum(input_value * input_age) / tx_size,
// which favours old, high-value coins regardless of fee. Figure 1 of the
// paper contrasts the two eras; this builder recreates the old norm so the
// bench can reproduce that contrast.
#pragma once

#include <cstdint>

#include "node/block_template.hpp"
#include "node/mempool.hpp"

namespace cn::node {

/// Coin-age priority of a transaction at time @p now. Input age is
/// approximated by the time since the transaction's funding was issued
/// (the simulator does not model per-UTXO confirmation depth).
double coin_age_priority(const btc::Transaction& tx, SimTime now) noexcept;

struct LegacyTemplateOptions {
  std::uint64_t max_vsize = btc::kMaxBlockVsize - btc::kCoinbaseVsize;
};

/// Builds a template ordered by descending coin-age priority.
/// CPFP packages are kept parent-before-child.
BlockTemplate build_legacy_template(const Mempool& mempool, SimTime now,
                                    const LegacyTemplateOptions& options = {});

}  // namespace cn::node

// Fee recommendation from recent blocks.
//
// The paper (§4.1) notes that Bitcoin Core and wallet software suggest
// fees from the fee-rate distribution of recently mined blocks — a loop
// that assumes miners follow the norm. The simulator's users consult this
// estimator, closing the same loop.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "btc/amount.hpp"
#include "btc/block.hpp"

namespace cn::node {

class FeeEstimator {
 public:
  /// Remembers fee-rates from the last @p window_blocks blocks.
  explicit FeeEstimator(std::size_t window_blocks = 6);

  void on_block(const btc::Block& block);

  /// Recommended fee-rate (sat/vB) such that @p percentile of recent
  /// committed transactions paid no more. Falls back to 1 sat/vB when no
  /// history is available.
  double recommend_sat_per_vb(double percentile) const;

  /// Number of transactions currently in the window.
  std::size_t sample_count() const noexcept;

 private:
  std::size_t window_blocks_;
  std::deque<std::vector<double>> per_block_rates_;  // sat/vB
};

}  // namespace cn::node

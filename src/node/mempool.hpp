// The Mempool: the in-memory buffer of unconfirmed transactions a node
// selects from when mining (paper §2). Beyond queueing, it implements the
// admission machinery of a real node:
//  * norm III's minimum relay fee-rate (configurable off, as the paper's
//    data set B node was);
//  * conflict tracking and BIP-125-style replace-by-fee — the paper's
//    intro: "some transactions may be conflicting... at most one can be
//    included in the blockchain";
//  * size-capped eviction (lowest fee-rate first) and age expiry,
//    mirroring Bitcoin Core's -maxmempool / -mempoolexpiry.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "btc/amount.hpp"
#include "btc/transaction.hpp"
#include "util/time.hpp"

namespace cn::node {

/// A transaction output reference (what inputs spend).
struct Outpoint {
  btc::Txid txid{};
  std::uint32_t vout = 0;

  bool operator==(const Outpoint&) const = default;
};

struct OutpointHash {
  std::size_t operator()(const Outpoint& o) const noexcept {
    return static_cast<std::size_t>(o.txid.short_id() ^
                                    (std::uint64_t{o.vout} * 0x9e3779b97f4a7c15ULL));
  }
};

struct MempoolEntry {
  btc::Transaction tx;
  SimTime arrival = 0;  ///< when this node first saw the transaction
  /// Number of this transaction's inputs whose funding parent is still
  /// queued (maintained incrementally by accept()/unlink()). Zero means
  /// the package rate is just the transaction's own fee-rate — the
  /// template builder's O(1) fast path.
  std::uint32_t in_pool_parents = 0;
};

enum class AcceptResult {
  kAccepted,          ///< queued (possibly after replacing conflicts)
  kDuplicate,         ///< already queued
  kBelowMinFeeRate,   ///< under the norm-III floor
  kConflictRejected,  ///< conflicts with queued txs and fails the RBF rules
  kMempoolFull,       ///< would not beat the eviction floor of a full pool
};

/// Resource limits; zero disables a limit.
struct MempoolLimits {
  std::uint64_t max_vsize = 0;  ///< aggregate vbytes cap (Core: -maxmempool)
  SimTime expiry = 0;           ///< max entry age (Core: -mempoolexpiry)
};

class Mempool {
 public:
  /// @p min_relay_sat_per_vb — norm III threshold; pass 0 to accept
  /// zero-fee transactions (data set B configuration).
  explicit Mempool(std::int64_t min_relay_sat_per_vb = btc::kDefaultMinRelaySatPerVb,
                   MempoolLimits limits = {})
      : min_rate_(btc::FeeRate::from_sat_per_vb(min_relay_sat_per_vb)),
        limits_(limits) {}

  AcceptResult accept(btc::Transaction tx, SimTime now);

  /// Removes a committed transaction; returns false if absent.
  /// Descendants stay queued (they become valid once the parent is
  /// confirmed, which is why a block template includes parents first).
  bool remove(const btc::Txid& id);

  /// Drops entries that arrived before @p cutoff (age expiry), together
  /// with their in-pool descendants. Returns the dropped ids.
  std::vector<btc::Txid> expire_before(SimTime cutoff);

  bool contains(const btc::Txid& id) const noexcept;
  const MempoolEntry* find(const btc::Txid& id) const noexcept;

  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }

  /// Aggregate virtual size of all queued transactions (congestion metric).
  std::uint64_t total_vsize() const noexcept { return total_vsize_; }

  btc::FeeRate min_relay_rate() const noexcept { return min_rate_; }
  const MempoolLimits& limits() const noexcept { return limits_; }

  /// Queued transactions spending any outpoint @p tx also spends.
  std::vector<btc::Txid> conflicts_of(const btc::Transaction& tx) const;

  /// Visits every entry (unspecified order).
  void for_each(const std::function<void(const MempoolEntry&)>& fn) const;

  /// Like for_each but statically dispatched — the per-entry call is on
  /// the template-build hot path.
  template <typename Fn>
  void for_each_entry(Fn&& fn) const {
    for (const auto& [id, entry] : entries_) fn(entry);
  }

  /// Snapshot of entries sorted by arrival time (deterministic export).
  std::vector<const MempoolEntry*> entries_by_arrival() const;

  /// Unconfirmed in-mempool ancestors of @p id (transitively), excluding
  /// the transaction itself.
  std::vector<const MempoolEntry*> ancestors_of(const btc::Txid& id) const;

  /// Direct in-mempool children of @p id (transactions spending it).
  std::vector<const MempoolEntry*> children_of(const btc::Txid& id) const;

  /// Transitive in-mempool descendants of @p id.
  std::vector<btc::Txid> descendants_of(const btc::Txid& id) const;

  /// Lifetime counters (diagnostics).
  std::uint64_t replaced_count() const noexcept { return replaced_; }
  std::uint64_t evicted_count() const noexcept { return evicted_; }
  std::uint64_t expired_count() const noexcept { return expired_; }

 private:
  /// Removes @p id and its descendants; updates all indexes.
  void remove_subtree(const btc::Txid& id);
  void unlink(const btc::Txid& id);

  /// BIP-125-style check: may @p tx replace the given conflicts?
  bool replacement_allowed(const btc::Transaction& tx,
                           const std::vector<btc::Txid>& conflicts) const;

  /// Frees space for @p incoming; false if the incoming transaction does
  /// not beat the eviction floor.
  bool make_room(const btc::Transaction& incoming);

  std::unordered_map<btc::Txid, MempoolEntry> entries_;
  /// parent txid -> children txids (only edges internal to the mempool).
  std::unordered_map<btc::Txid, std::vector<btc::Txid>> children_;
  /// outpoint -> the queued tx spending it (conflict index).
  std::unordered_map<Outpoint, btc::Txid, OutpointHash> spenders_;
  /// Fee-rate-ordered eviction index: begin() is the eviction floor
  /// (lowest fee-rate, txid tie-break), so make_room is O(log n) per
  /// evicted transaction instead of a full-pool scan. Kept in lockstep
  /// with entries_ by accept()/unlink().
  std::set<std::pair<btc::FeeRate, btc::Txid>> by_rate_;
  std::uint64_t total_vsize_ = 0;
  btc::FeeRate min_rate_;
  MempoolLimits limits_;
  std::uint64_t replaced_ = 0;
  std::uint64_t evicted_ = 0;
  std::uint64_t expired_ = 0;
};

}  // namespace cn::node

#include "node/snapshot.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace cn::node {

CongestionLevel congestion_level(std::uint64_t total_vsize,
                                 std::uint64_t unit_vsize) noexcept {
  CN_ASSERT(unit_vsize > 0);
  if (total_vsize <= 1 * unit_vsize) return CongestionLevel::kNone;
  if (total_vsize <= 2 * unit_vsize) return CongestionLevel::kLow;
  if (total_vsize <= 4 * unit_vsize) return CongestionLevel::kMedium;
  return CongestionLevel::kHigh;
}

void SnapshotSeries::record(MempoolStat stat) {
  CN_ASSERT(stats_.empty() || stat.time > stats_.back().time);
  stats_.push_back(stat);
}

double SnapshotSeries::fraction_above(std::uint64_t vsize) const noexcept {
  if (stats_.empty()) return 0.0;
  std::size_t n = 0;
  for (const MempoolStat& s : stats_)
    if (s.total_vsize > vsize) ++n;
  return static_cast<double>(n) / static_cast<double>(stats_.size());
}

std::uint64_t SnapshotSeries::max_vsize() const noexcept {
  std::uint64_t m = 0;
  for (const MempoolStat& s : stats_) m = std::max(m, s.total_vsize);
  return m;
}

std::vector<SnapshotGap> SnapshotSeries::gaps(SimTime expected_cadence,
                                              double gap_factor) const {
  CN_ASSERT(expected_cadence > 0);
  std::vector<SnapshotGap> out;
  const double limit = gap_factor * static_cast<double>(expected_cadence);
  for (std::size_t i = 1; i < stats_.size(); ++i) {
    const SimTime dt = stats_[i].time - stats_[i - 1].time;
    if (static_cast<double>(dt) > limit) {
      out.push_back(SnapshotGap{stats_[i - 1].time, stats_[i].time});
    }
  }
  return out;
}

CongestionLevel SnapshotSeries::level_at(SimTime t, std::uint64_t unit_vsize) const noexcept {
  // Binary search for the last snapshot with time <= t.
  const auto it = std::upper_bound(
      stats_.begin(), stats_.end(), t,
      [](SimTime value, const MempoolStat& s) { return value < s.time; });
  if (it == stats_.begin()) return CongestionLevel::kNone;
  return congestion_level(std::prev(it)->total_vsize, unit_vsize);
}

std::vector<CongestionLevel> SnapshotSeries::levels_for(
    std::span<const SimTime> times, std::uint64_t unit_vsize) const {
  std::vector<CongestionLevel> out;
  out.reserve(times.size());
  // i = one past the last snapshot with time <= the previous query.
  std::size_t i = 0;
  SimTime prev = 0;
  bool have_prev = false;
  for (const SimTime t : times) {
    if (have_prev && t >= prev) {
      while (i < stats_.size() && stats_[i].time <= t) ++i;
    } else {
      i = static_cast<std::size_t>(
          std::upper_bound(stats_.begin(), stats_.end(), t,
                           [](SimTime value, const MempoolStat& s) {
                             return value < s.time;
                           }) -
          stats_.begin());
    }
    prev = t;
    have_prev = true;
    out.push_back(i == 0 ? CongestionLevel::kNone
                         : congestion_level(stats_[i - 1].total_vsize, unit_vsize));
  }
  return out;
}

}  // namespace cn::node

// Chain-neutrality scoring (the paper's §6.1 proposal, made concrete).
//
// The paper closes by asking how a third-party observer could verify
// that miners adhere to ordering norms. This module composes the audit
// primitives into a per-pool scorecard a watchdog could publish:
//
//  * ordering fidelity — mean PPE of the pool's blocks (norm II);
//  * opaque-boost rate — fraction of the pool's committed transactions
//    with SPPE >= a threshold (selfish/collusive/dark-fee placements);
//  * self-dealing — the §5.1 acceleration p-value on the pool's own
//    (self-interest) transactions;
//  * floor discipline — fraction of blocks containing below-floor
//    (sub-1 sat/vB) transactions (norm III).
//
// The composite score starts at 100 and subtracts calibrated penalties;
// a norm-following pool lands in the high 90s, the paper's misbehaving
// pools fall well below.
#pragma once

#include <string>
#include <vector>

#include "btc/chain.hpp"
#include "core/wallet_inference.hpp"

namespace cn::util {
class ThreadPool;
}

namespace cn::core {

class AuditDataset;

struct NeutralityOptions {
  double sppe_boost_threshold = 90.0;  ///< "hoisted" transaction cutoff
  std::uint64_t min_blocks = 10;       ///< pools below this are skipped
  double alpha = 0.001;                ///< significance for self-dealing
};

struct NeutralityReport {
  std::string pool;
  std::uint64_t blocks = 0;
  std::uint64_t txs = 0;

  double mean_ppe = 0.0;            ///< percentile-rank points, [0, 100]
  double boosted_tx_rate = 0.0;     ///< fraction with SPPE >= threshold
  double self_dealing_p = 1.0;      ///< acceleration p-value (own txs)
  double self_dealing_sppe = 0.0;   ///< SPPE of own txs in own blocks
  double below_floor_block_rate = 0.0;

  bool self_dealing_flagged = false;
  double score = 100.0;  ///< composite neutrality score, [0, 100]

  /// Mean effective coverage over the pool's blocks; annotated by the
  /// audit pipeline when a DataQualityReport is available (1.0 without).
  double coverage = 1.0;
  /// Coverage below the audit's min_coverage threshold: the scorecard
  /// rests on too little observed data and must not be read as "clean".
  bool insufficient_data = false;
};

/// Builds per-pool scorecards for every pool with at least
/// options.min_blocks attributed blocks, ordered worst-first.
std::vector<NeutralityReport> neutrality_reports(
    const btc::Chain& chain, const PoolAttribution& attribution,
    const NeutralityOptions& options = {});

/// Same scorecards, with the per-pool chain scans fanned out over
/// @p workers. The result is identical to the serial overload for any
/// pool size (each pool's report is independent; ordering is restored
/// by the final worst-first sort).
std::vector<NeutralityReport> neutrality_reports(
    const btc::Chain& chain, const PoolAttribution& attribution,
    const NeutralityOptions& options, util::ThreadPool& workers);

/// Columnar variant: each pool's scorecard reads the dataset's cached
/// PPE/SPPE columns, precomputed block lists, and flag bits instead of
/// rescanning the chain. Byte-identical reports to the overloads above.
std::vector<NeutralityReport> neutrality_reports(const AuditDataset& dataset,
                                                 const NeutralityOptions& options,
                                                 util::ThreadPool& workers);

/// The composite score for one report (exposed for testing; also set on
/// the reports returned above).
double neutrality_score(const NeutralityReport& report,
                        const NeutralityOptions& options = {});

}  // namespace cn::core

#include "core/data_quality.hpp"

#include <algorithm>

namespace cn::core {

double DataQualityReport::coverage_at(std::uint64_t height) const noexcept {
  const BlockCoverage* bc = find(height);
  return bc != nullptr ? bc->coverage : 1.0;
}

const BlockCoverage* DataQualityReport::find(std::uint64_t height) const noexcept {
  const auto it = index.find(height);
  if (it == index.end()) return nullptr;
  return &blocks[it->second];
}

std::uint64_t DataQualityReport::low_coverage_blocks(double threshold) const noexcept {
  std::uint64_t n = 0;
  for (const BlockCoverage& bc : blocks)
    if (bc.coverage < threshold) ++n;
  return n;
}

DataQualityReport assess_data_quality(
    const btc::Chain& chain, const node::SnapshotSeries* snapshots,
    const std::unordered_map<btc::Txid, SimTime>* first_seen,
    const QualityOptions& options) {
  DataQualityReport report;
  report.has_snapshots = snapshots != nullptr && !snapshots->empty();
  report.has_first_seen = first_seen != nullptr;
  if (first_seen != nullptr) {
    report.first_seen_txs = static_cast<std::uint64_t>(first_seen->size());
  }
  if (report.has_snapshots) {
    report.gaps = snapshots->gaps(options.snapshot_cadence, options.gap_factor);
  }

  report.blocks.reserve(chain.size());
  double coverage_sum = 0.0;
  SimTime prev_mined_at = chain.empty() ? 0 : chain.front().mined_at();
  for (const btc::Block& block : chain.blocks()) {
    BlockCoverage bc;
    bc.height = block.height();

    if (report.has_first_seen && block.tx_count() > 0) {
      std::size_t seen = 0;
      for (const btc::Transaction& tx : block.txs()) {
        if (first_seen->count(tx.id()) != 0) ++seen;
      }
      bc.first_seen_coverage =
          static_cast<double>(seen) / static_cast<double>(block.tx_count());
    }

    // The block gathered its transactions between the previous block and
    // its own timestamp; if that window intersects an observer outage,
    // Mempool-derived claims about the block are unattributable.
    const SimTime window_from = std::min(prev_mined_at, block.mined_at());
    const SimTime window_to = block.mined_at();
    for (const node::SnapshotGap& gap : report.gaps) {
      if (window_from < gap.to && gap.from < window_to) {
        bc.in_snapshot_gap = true;
        break;
      }
    }

    bc.coverage = bc.in_snapshot_gap ? 0.0 : bc.first_seen_coverage;
    coverage_sum += bc.coverage;
    report.index.emplace(bc.height, report.blocks.size());
    report.blocks.push_back(bc);
    prev_mined_at = block.mined_at();
  }
  report.mean_coverage =
      report.blocks.empty() ? 1.0
                            : coverage_sum / static_cast<double>(report.blocks.size());
  return report;
}

}  // namespace cn::core

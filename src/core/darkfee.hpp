// SPPE-based detection of dark-fee (accelerated) transactions
// (paper §5.4.2, Table 4).
//
// An accelerated transaction is included near the top of a block although
// its public fee-rate belongs near the bottom, so its SPPE approaches
// +100. The detector buckets a pool's committed transactions by SPPE
// threshold and validates each bucket against the acceleration service's
// public "was this txid accelerated?" query — the same validation loop
// the paper ran against BTC.com's pushtx API.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "btc/chain.hpp"
#include "core/audit_dataset.hpp"
#include "core/wallet_inference.hpp"

namespace cn::core {

/// The public acceleration-query endpoint.
using IsAcceleratedFn = std::function<bool(const btc::Txid&)>;

struct DarkFeeBucket {
  double sppe_threshold = 0.0;  ///< bucket = txs with SPPE >= threshold
  std::uint64_t tx_count = 0;
  std::uint64_t accelerated = 0;

  double accelerated_fraction() const noexcept {
    if (tx_count == 0) return 0.0;
    return static_cast<double>(accelerated) / static_cast<double>(tx_count);
  }
};

/// Table 4 for @p pool: for each threshold (descending, e.g. {100, 99,
/// 90, 50, 1}), how many of the pool's committed transactions have
/// SPPE >= threshold and what fraction of those the service confirms as
/// accelerated.
std::vector<DarkFeeBucket> darkfee_buckets(const btc::Chain& chain,
                                           const PoolAttribution& attribution,
                                           const std::string& pool,
                                           const IsAcceleratedFn& is_accelerated,
                                           const std::vector<double>& thresholds);

/// Control: how many of @p sample_size uniformly sampled transactions of
/// @p pool are accelerated (the paper found none in 1000).
std::uint64_t accelerated_in_random_sample(const btc::Chain& chain,
                                           const PoolAttribution& attribution,
                                           const std::string& pool,
                                           const IsAcceleratedFn& is_accelerated,
                                           std::size_t sample_size,
                                           std::uint64_t seed);

/// Classifier wrapper: flags every transaction of @p pool whose SPPE
/// meets @p threshold. Returns refs of flagged transactions.
std::vector<TxRef> detect_accelerated(const btc::Chain& chain,
                                      const PoolAttribution& attribution,
                                      const std::string& pool, double threshold);

/// Columnar classifier: flags every transaction in @p pool's blocks whose
/// cached SPPE meets @p threshold. Same transactions, same order as
/// detect_accelerated (NaN entries — 1-tx blocks — never qualify).
std::vector<TxIdx> detect_accelerated(const AuditDataset& dataset, PoolId pool,
                                      double threshold);

/// Count-only form of the above (the audit's Table 4 detector needs just
/// the tally).
std::uint64_t count_accelerated(const AuditDataset& dataset, PoolId pool,
                                double threshold);

}  // namespace cn::core

#include "core/withholding.hpp"

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "stats/binomial.hpp"

namespace cn::core {

namespace {

/// A transaction the observer saw, joined with where the chain finally
/// confirmed it. Only confirmed transactions participate: their fee
/// rates are known from the chain, and the join keeps the detector a
/// pure function of (chain, first-seen log).
struct SeenTx {
  SimTime seen = 0;
  std::size_t confirm_idx = 0;  ///< index into chain.blocks()
  double rate = 0.0;            ///< sat/vB
};

}  // namespace

std::vector<WithholdingReport> withholding_reports(
    const btc::Chain& chain, const PoolAttribution& attribution,
    const std::unordered_map<btc::Txid, SimTime>& first_seen,
    const WithholdingOptions& options) {
  const std::span<const btc::Block> blocks = chain.blocks();

  std::vector<SeenTx> txs;
  std::uint64_t max_vsize = 0;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    max_vsize = std::max(max_vsize, blocks[i].total_vsize());
    for (const btc::Transaction& tx : blocks[i].txs()) {
      const auto it = first_seen.find(tx.id());
      if (it == first_seen.end()) continue;
      txs.push_back(SeenTx{it->second, i, tx.fee_rate().sat_per_vbyte()});
    }
  }
  std::sort(txs.begin(), txs.end(), [](const SeenTx& a, const SeenTx& b) {
    if (a.seen != b.seen) return a.seen < b.seen;
    if (a.confirm_idx != b.confirm_idx) return a.confirm_idx < b.confirm_idx;
    return a.rate < b.rate;
  });

  // One forward sweep: `active` is the observer's eligible mempool view
  // just before each block — seen at least min_lead_s ago, not yet
  // confirmed. Blocks arrive in time order, so admission is a moving
  // pointer and eviction a compaction.
  std::vector<SeenTx> active;
  std::size_t next = 0;
  std::vector<char> judged(blocks.size(), 0);
  std::vector<char> flagged(blocks.size(), 0);
  std::vector<double> rates;  // scratch: the block's included fee rates
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const btc::Block& block = blocks[i];
    const SimTime t = block.mined_at();
    while (next < txs.size() &&
           static_cast<double>(t - txs[next].seen) >= options.min_lead_s) {
      active.push_back(txs[next++]);
    }
    std::erase_if(active,
                  [i](const SeenTx& p) { return p.confirm_idx < i; });

    // Empty (SPV) blocks carry no mempool signal; full blocks exclude
    // transactions legitimately. Neither is judged.
    if (block.is_empty()) continue;
    if (max_vsize > 0 &&
        static_cast<double>(block.total_vsize()) >=
            options.full_block_fraction * static_cast<double>(max_vsize)) {
      continue;
    }

    rates.clear();
    for (const btc::Transaction& tx : block.txs()) {
      rates.push_back(tx.fee_rate().sat_per_vbyte());
    }
    const std::size_t floor_idx = std::min(
        rates.size() - 1,
        static_cast<std::size_t>(options.fee_floor_quantile *
                                 static_cast<double>(rates.size())));
    std::nth_element(rates.begin(), rates.begin() + floor_idx, rates.end());
    const double floor = rates[floor_idx];

    std::uint64_t included = 0;
    std::uint64_t missing = 0;
    for (const SeenTx& p : active) {
      if (p.rate < floor) continue;
      if (p.confirm_idx == i) {
        ++included;
      } else {
        ++missing;
      }
    }
    const std::uint64_t n = included + missing;
    if (n < options.min_candidates) continue;
    judged[i] = 1;
    if (static_cast<double>(missing) >=
        options.missing_threshold * static_cast<double>(n)) {
      flagged[i] = 1;
    }
  }

  // Per-pool aggregation against the network base rate.
  std::uint64_t judged_total = 0;
  std::uint64_t flagged_total = 0;
  std::unordered_map<std::string, std::pair<std::uint64_t, std::uint64_t>> acc;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    if (!judged[i]) continue;
    ++judged_total;
    flagged_total += flagged[i];
    if (const auto owner = attribution.pool_of(blocks[i].height())) {
      auto& [total, hits] = acc[*owner];
      ++total;
      hits += flagged[i];
    }
  }
  const double base_rate =
      judged_total > 0
          ? static_cast<double>(flagged_total) / static_cast<double>(judged_total)
          : 0.0;

  std::vector<WithholdingReport> reports;
  for (const std::string& pool : attribution.pools_by_blocks()) {
    const auto it = acc.find(pool);
    if (it == acc.end()) continue;
    WithholdingReport r;
    r.pool = pool;
    r.blocks = it->second.first;
    r.flagged = it->second.second;
    r.flagged_rate =
        static_cast<double>(r.flagged) / static_cast<double>(r.blocks);
    r.base_rate = base_rate;
    r.p_value = stats::binomial_sf(r.flagged, r.blocks, base_rate);
    reports.push_back(std::move(r));
  }
  std::sort(reports.begin(), reports.end(),
            [](const WithholdingReport& a, const WithholdingReport& b) {
              if (a.p_value != b.p_value) return a.p_value < b.p_value;
              if (a.flagged_rate != b.flagged_rate)
                return a.flagged_rate > b.flagged_rate;
              return a.pool < b.pool;
            });
  return reports;
}

}  // namespace cn::core

#include "core/sppe.hpp"

#include <cmath>

#include "stats/rank.hpp"
#include "util/assert.hpp"

namespace cn::core {

std::vector<double> block_sppe(const btc::Block& block) {
  const std::size_t n = block.tx_count();
  std::vector<double> out;
  if (n < 2) return out;

  std::vector<double> keys;
  keys.reserve(n);
  for (const btc::Transaction& tx : block.txs()) {
    keys.push_back(tx.fee_rate().sat_per_vbyte());
  }
  const std::vector<std::size_t> predicted = stats::predicted_positions(keys);

  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double obs = stats::percentile_rank(i, n);
    const double pred = stats::percentile_rank(predicted[i], n);
    out.push_back(pred - obs);
  }
  return out;
}

double tx_sppe(const btc::Block& block, std::size_t position) {
  const std::vector<double> all = block_sppe(block);
  CN_ASSERT(position < all.size());
  return all[position];
}

std::vector<double> sppe_values(const btc::Chain& chain,
                                const std::vector<TxRef>& txs,
                                const PoolAttribution& attribution,
                                const std::string& pool) {
  std::vector<double> out;
  std::uint64_t cached_height = 0;
  std::vector<double> cached;
  bool have_cache = false;

  for (const TxRef& ref : txs) {
    if (!pool.empty()) {
      const auto owner = attribution.pool_of(ref.block_height);
      if (!owner.has_value() || *owner != pool) continue;
    }
    if (!have_cache || cached_height != ref.block_height) {
      cached = block_sppe(chain.at_height(ref.block_height));
      cached_height = ref.block_height;
      have_cache = true;
    }
    if (ref.position >= cached.size()) continue;  // 1-tx block: no SPPE
    out.push_back(cached[ref.position]);
  }
  return out;
}

double mean_sppe(const btc::Chain& chain, const std::vector<TxRef>& txs,
                 const PoolAttribution& attribution, const std::string& pool,
                 std::size_t* count) {
  const std::vector<double> values = sppe_values(chain, txs, attribution, pool);
  if (count != nullptr) *count = values.size();
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

std::vector<double> sppe_values(const AuditDataset& dataset,
                                std::span<const TxIdx> txs, PoolId pool) {
  std::vector<double> out;
  const std::span<const double> sppe = dataset.sppe();
  const std::span<const PoolId> block_pool = dataset.block_pool();
  for (const TxIdx t : txs) {
    if (pool != kNoPoolId && block_pool[dataset.block_of(t)] != pool) continue;
    const double v = sppe[t];
    if (std::isnan(v)) continue;  // 1-tx block: no SPPE
    out.push_back(v);
  }
  return out;
}

double mean_sppe(const AuditDataset& dataset, std::span<const TxIdx> txs,
                 PoolId pool, std::size_t* count) {
  const std::vector<double> values = sppe_values(dataset, txs, pool);
  if (count != nullptr) *count = values.size();
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

}  // namespace cn::core

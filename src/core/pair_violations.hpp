// Pairwise selection-norm violations (paper §4.2.1, Figure 6).
//
// From a Mempool snapshot at time T, take the transactions that were
// pending at T and eventually committed. A pair (i, j) violates the
// fee-rate selection norm when i arrived earlier (t_i + eps < t_j) and
// offered a higher fee-rate (f_i > f_j) yet was committed later
// (b_i > b_j). The reported fraction is violations over the pairs the
// norm makes a prediction for (t_i + eps < t_j and f_i > f_j).
//
// Counting is exact and sub-quadratic: predicted pairs come from a
// Fenwick-tree sweep over fee-rate ranks (Kendall-tau style, O(n log n));
// violations add the third (block-height) dimension and are counted with
// a CDQ divide-and-conquer over the same event sequence (O(n log^2 n)).
// The epsilon arrival window is handled by splitting every transaction
// into a query event at t_j and a deferred insert event at t_i + eps, so
// a transaction only becomes "visible" to later queries once its slack
// has elapsed. The O(n^2) reference loop is kept behind
// PairAlgorithm::kBruteForce for cross-validation.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/time.hpp"

namespace cn::core {

/// A committed transaction as seen by the observer node.
struct SeenTx {
  SimTime first_seen = 0;       ///< observer arrival (the paper's t_i)
  double fee_rate = 0.0;        ///< sat/vB (f_i)
  std::uint64_t block_height = 0;  ///< commit block (b_i)
  bool cpfp = false;            ///< in-block CPFP child
  bool cpfp_parent = false;     ///< parent of an in-block CPFP child
};

struct PairViolationStats {
  std::uint64_t predicted_pairs = 0;  ///< pairs with t_i+eps<t_j, f_i>f_j
  std::uint64_t violations = 0;       ///< ... of which b_i > b_j

  double fraction() const noexcept {
    if (predicted_pairs == 0) return 0.0;
    return static_cast<double>(violations) / static_cast<double>(predicted_pairs);
  }
};

/// Counting strategy. Both produce identical results on any input (the
/// property suite cross-validates them); kFenwick is the production path.
enum class PairAlgorithm {
  kFenwick,     ///< O(n log n) sweep + O(n log^2 n) CDQ (exact, default)
  kBruteForce,  ///< O(n^2) reference double loop (cross-validation)
};

/// Counts violating pairs among @p txs with arrival slack @p epsilon
/// (negative epsilon is clamped to 0).
/// When @p exclude_cpfp, transactions that are in-block CPFP children or
/// parents of one are discarded first (the paper's Fig 6b).
/// @p max_txs is an opt-in deterministic downsample (every k-th
/// transaction by arrival) kept for comparability with older runs;
/// 0 (the default) counts every pair exactly.
PairViolationStats count_pair_violations(
    std::vector<SeenTx> txs, SimTime epsilon, bool exclude_cpfp,
    std::size_t max_txs = 0, PairAlgorithm algorithm = PairAlgorithm::kFenwick);

/// Extension beyond Fig 6: attributes each violating pair to the block
/// height that *caused* it — the block committing the later-arriving,
/// lower-fee transaction j while the better-qualified i was left pending
/// (i.e. b_j; the miner of that block skipped i). Returns violation
/// counts per block height, which callers can fold by pool via
/// PoolAttribution. Same filtering semantics as count_pair_violations.
std::unordered_map<std::uint64_t, std::uint64_t> violations_by_block(
    std::vector<SeenTx> txs, SimTime epsilon, bool exclude_cpfp,
    std::size_t max_txs = 0, PairAlgorithm algorithm = PairAlgorithm::kFenwick);

}  // namespace cn::core

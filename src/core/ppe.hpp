// Position Prediction Error (paper §4.2.2, Figures 1 and 7).
//
// If a miner followed the GBT fee-rate norm, the position of each
// (non-CPFP) transaction inside a block would be predicted by sorting the
// block's transactions by fee-rate, highest first. PPE quantifies the
// deviation: the mean absolute difference between predicted and observed
// positions, expressed as percentile ranks within the block (so a PPE of
// 2.65 means transactions sit on average 2.65% of a block away from where
// the norm predicts).
#pragma once

#include <optional>
#include <vector>

#include "btc/block.hpp"
#include "btc/chain.hpp"

namespace cn::core {

class AuditDataset;

/// Predicted positions for the block's transactions under the fee-rate
/// norm. If @p exclude_cpfp, in-block dependent transactions — CPFP
/// children AND the parents they rescue — are removed before ranking:
/// GBT places whole ancestor packages by combined fee-rate, so neither
/// side of a dependent pair has a meaningful *individual* predicted
/// position. Returns, for each retained observed position, the pair
/// (observed index, predicted index) over the retained list.
struct PositionPair {
  std::size_t observed = 0;   ///< index in the retained (post-filter) list
  std::size_t predicted = 0;  ///< norm-predicted index in that list
};
std::vector<PositionPair> predicted_positions(const btc::Block& block,
                                              bool exclude_cpfp);

/// PPE of one block: mean |predicted - observed| percentile rank, in
/// [0, 100]. std::nullopt when the block has fewer than 2 retained
/// transactions (no ordering to audit).
std::optional<double> block_ppe(const btc::Block& block, bool exclude_cpfp = true);

/// PPE per block over a whole chain (blocks without a defined PPE are
/// skipped).
std::vector<double> chain_ppe(const btc::Chain& chain, bool exclude_cpfp = true);

/// Columnar variant: gathers the dataset's cached per-block PPE column
/// (NaN entries skipped). Identical values to chain_ppe on the same
/// chain — the cache is filled by block_ppe itself.
std::vector<double> chain_ppe(const AuditDataset& dataset);

}  // namespace cn::core

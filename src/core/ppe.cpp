#include "core/ppe.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "core/audit_dataset.hpp"
#include "stats/rank.hpp"
#include "util/assert.hpp"

namespace cn::core {

std::vector<PositionPair> predicted_positions(const btc::Block& block,
                                              bool exclude_cpfp) {
  // Collect retained transaction fee-rates in observed order.
  std::vector<double> keys;
  keys.reserve(block.tx_count());
  if (exclude_cpfp) {
    // Drop CPFP children and their in-block parents: both were placed by
    // the package rate, not their individual rates.
    const std::vector<std::size_t> cpfp = block.cpfp_positions();
    std::vector<bool> excluded(block.tx_count(), false);
    std::unordered_set<btc::Txid> parent_ids;
    for (std::size_t pos : cpfp) {
      excluded[pos] = true;
      for (const btc::TxInput& in : block.txs()[pos].inputs()) {
        if (!in.prev_txid.is_null()) parent_ids.insert(in.prev_txid);
      }
    }
    for (std::size_t i = 0; i < block.txs().size(); ++i) {
      if (!excluded[i] && parent_ids.contains(block.txs()[i].id())) {
        excluded[i] = true;
      }
    }
    for (std::size_t i = 0; i < block.txs().size(); ++i) {
      if (excluded[i]) continue;
      keys.push_back(block.txs()[i].fee_rate().sat_per_vbyte());
    }
  } else {
    for (const btc::Transaction& tx : block.txs()) {
      keys.push_back(tx.fee_rate().sat_per_vbyte());
    }
  }

  // Stable sort: ties keep observed order (charitable to the miner).
  const std::vector<std::size_t> predicted = stats::predicted_positions(keys);

  std::vector<PositionPair> out;
  out.reserve(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    out.push_back(PositionPair{i, predicted[i]});
  }
  return out;
}

std::optional<double> block_ppe(const btc::Block& block, bool exclude_cpfp) {
  const std::vector<PositionPair> pairs = predicted_positions(block, exclude_cpfp);
  const std::size_t n = pairs.size();
  if (n < 2) return std::nullopt;
  double sum = 0.0;
  for (const PositionPair& p : pairs) {
    const double obs = stats::percentile_rank(p.observed, n);
    const double pred = stats::percentile_rank(p.predicted, n);
    sum += std::fabs(pred - obs);
  }
  return sum / static_cast<double>(n);
}

std::vector<double> chain_ppe(const btc::Chain& chain, bool exclude_cpfp) {
  std::vector<double> out;
  out.reserve(chain.size());
  for (const btc::Block& block : chain.blocks()) {
    const auto ppe = block_ppe(block, exclude_cpfp);
    if (ppe.has_value()) out.push_back(*ppe);
  }
  return out;
}

std::vector<double> chain_ppe(const AuditDataset& dataset) {
  std::vector<double> out;
  out.reserve(dataset.block_count());
  for (const double v : dataset.block_ppe()) {
    if (!std::isnan(v)) out.push_back(v);
  }
  return out;
}

}  // namespace cn::core

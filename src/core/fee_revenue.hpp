// Miner revenue decomposition (paper Table 5 and §4.1.2): what share of
// each block's total reward (subsidy + fees) comes from fees.
//
// Scaled-down simulations shrink blocks (and with them total fees) by
// some factor relative to the real 1 MB network; passing that factor as
// @p subsidy_scale shrinks the subsidy consistently, so the *share* is
// directly comparable to the paper's.
#pragma once

#include <vector>

#include "btc/chain.hpp"
#include "stats/descriptive.hpp"

namespace cn::core {

class AuditDataset;

/// Per-block fee share of total revenue, in percent:
/// fees / (fees + subsidy(height) * subsidy_scale) * 100.
std::vector<double> per_block_fee_share_percent(const btc::Chain& chain,
                                                double subsidy_scale = 1.0);

/// Columnar variant over the dataset's cached per-block fee totals;
/// identical values to the chain overload.
std::vector<double> per_block_fee_share_percent(const AuditDataset& dataset,
                                                double subsidy_scale = 1.0);

/// Summary of the above (the mean/std/min/percentiles/max columns of
/// Table 5).
stats::Summary fee_share_summary(const btc::Chain& chain,
                                 double subsidy_scale = 1.0);

/// Columnar variant of the summary.
stats::Summary fee_share_summary(const AuditDataset& dataset,
                                 double subsidy_scale = 1.0);

/// Fee share restricted to a height range (inclusive) — the paper's
/// per-year and post-halving slices.
stats::Summary fee_share_summary(const btc::Chain& chain,
                                 std::uint64_t first_height,
                                 std::uint64_t last_height,
                                 double subsidy_scale = 1.0);

}  // namespace cn::core

#include "core/pair_violations.hpp"

#include <algorithm>

namespace cn::core {

namespace {

/// Shared preprocessing: CPFP filter, arrival sort, deterministic
/// downsampling.
std::vector<SeenTx> prepare(std::vector<SeenTx> txs, bool exclude_cpfp,
                            std::size_t max_txs) {
  if (exclude_cpfp) {
    txs.erase(std::remove_if(txs.begin(), txs.end(),
                             [](const SeenTx& t) { return t.cpfp || t.cpfp_parent; }),
              txs.end());
  }
  std::sort(txs.begin(), txs.end(), [](const SeenTx& a, const SeenTx& b) {
    return a.first_seen < b.first_seen;
  });
  if (max_txs > 0 && txs.size() > max_txs) {
    const std::size_t stride = (txs.size() + max_txs - 1) / max_txs;
    std::vector<SeenTx> sampled;
    sampled.reserve(txs.size() / stride + 1);
    for (std::size_t i = 0; i < txs.size(); i += stride) sampled.push_back(txs[i]);
    txs = std::move(sampled);
  }
  return txs;
}

}  // namespace

PairViolationStats count_pair_violations(std::vector<SeenTx> txs,
                                         SimTime epsilon,
                                         bool exclude_cpfp,
                                         std::size_t max_txs) {
  txs = prepare(std::move(txs), exclude_cpfp, max_txs);

  PairViolationStats out;
  for (std::size_t i = 0; i < txs.size(); ++i) {
    for (std::size_t j = i + 1; j < txs.size(); ++j) {
      // txs sorted by arrival: i earlier than j.
      if (txs[i].first_seen + epsilon >= txs[j].first_seen) continue;
      if (txs[i].fee_rate <= txs[j].fee_rate) continue;
      ++out.predicted_pairs;
      if (txs[i].block_height > txs[j].block_height) ++out.violations;
    }
  }
  return out;
}

std::unordered_map<std::uint64_t, std::uint64_t> violations_by_block(
    std::vector<SeenTx> txs, SimTime epsilon, bool exclude_cpfp,
    std::size_t max_txs) {
  txs = prepare(std::move(txs), exclude_cpfp, max_txs);

  std::unordered_map<std::uint64_t, std::uint64_t> out;
  for (std::size_t i = 0; i < txs.size(); ++i) {
    for (std::size_t j = i + 1; j < txs.size(); ++j) {
      if (txs[i].first_seen + epsilon >= txs[j].first_seen) continue;
      if (txs[i].fee_rate <= txs[j].fee_rate) continue;
      if (txs[i].block_height > txs[j].block_height) {
        ++out[txs[j].block_height];
      }
    }
  }
  return out;
}

}  // namespace cn::core

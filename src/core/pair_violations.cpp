#include "core/pair_violations.hpp"

#include <algorithm>

namespace cn::core {

namespace {

/// Shared preprocessing: CPFP filter, arrival sort, deterministic
/// downsampling (opt-in via max_txs > 0).
std::vector<SeenTx> prepare(std::vector<SeenTx> txs, bool exclude_cpfp,
                            std::size_t max_txs) {
  if (exclude_cpfp) {
    txs.erase(std::remove_if(txs.begin(), txs.end(),
                             [](const SeenTx& t) { return t.cpfp || t.cpfp_parent; }),
              txs.end());
  }
  std::sort(txs.begin(), txs.end(), [](const SeenTx& a, const SeenTx& b) {
    return a.first_seen < b.first_seen;
  });
  if (max_txs > 0 && txs.size() > max_txs) {
    const std::size_t stride = (txs.size() + max_txs - 1) / max_txs;
    std::vector<SeenTx> sampled;
    sampled.reserve(txs.size() / stride + 1);
    for (std::size_t i = 0; i < txs.size(); i += stride) sampled.push_back(txs[i]);
    txs = std::move(sampled);
  }
  return txs;
}

/// Point-update / prefix-sum tree over [0, n) ranks.
class Fenwick {
 public:
  explicit Fenwick(std::size_t n) : tree_(n + 1, 0) {}

  void add(std::size_t rank, std::int64_t delta) {
    for (std::size_t i = rank + 1; i < tree_.size(); i += i & (~i + 1)) {
      tree_[i] += delta;
    }
  }

  /// Sum over ranks [0, count).
  std::uint64_t prefix(std::size_t count) const {
    std::int64_t sum = 0;
    for (std::size_t i = std::min(count, tree_.size() - 1); i > 0; i -= i & (~i + 1)) {
      sum += tree_[i];
    }
    return static_cast<std::uint64_t>(sum);
  }

 private:
  std::vector<std::int64_t> tree_;
};

/// One transaction contributes two events: a *query* at its arrival t_j
/// (count the already-visible better-qualified transactions) and a
/// deferred *insert* at t_i + epsilon (become visible to later queries
/// only once the arrival slack has elapsed). Ordering queries before
/// inserts at equal time realizes the strict t_i + eps < t_j window.
struct Event {
  SimTime time = 0;
  bool is_insert = false;
  std::uint32_t fee_rank = 0;    ///< ascending fee-rate rank
  std::uint32_t block_rank = 0;  ///< ascending block-height rank
  std::uint32_t tx_index = 0;    ///< index into the arrival-sorted txs
};

bool event_order(const Event& a, const Event& b) {
  if (a.time != b.time) return a.time < b.time;
  return a.is_insert < b.is_insert;  // queries first at equal time
}

/// CDQ divide-and-conquer: counts, for every query event, the insert
/// events earlier in the sequence with strictly higher fee rank AND
/// strictly higher block rank, accumulating into viol[tx_index]. The
/// sequence order already encodes the epsilon time window, so the cross
/// step is a plain 2-D dominance count (fee-descending sweep over a
/// Fenwick tree keyed by block rank).
void cdq_violations(const std::vector<Event>& events, std::size_t lo,
                    std::size_t hi, Fenwick& block_bit,
                    std::vector<std::uint64_t>& viol) {
  if (hi - lo <= 1) return;
  const std::size_t mid = lo + (hi - lo) / 2;
  cdq_violations(events, lo, mid, block_bit, viol);
  cdq_violations(events, mid, hi, block_bit, viol);

  std::vector<const Event*> inserts;
  std::vector<const Event*> queries;
  for (std::size_t i = lo; i < mid; ++i) {
    if (events[i].is_insert) inserts.push_back(&events[i]);
  }
  for (std::size_t i = mid; i < hi; ++i) {
    if (!events[i].is_insert) queries.push_back(&events[i]);
  }
  if (inserts.empty() || queries.empty()) return;

  const auto by_fee_desc = [](const Event* a, const Event* b) {
    return a->fee_rank > b->fee_rank;
  };
  std::sort(inserts.begin(), inserts.end(), by_fee_desc);
  std::sort(queries.begin(), queries.end(), by_fee_desc);

  std::size_t p = 0;
  std::uint64_t visible = 0;
  for (const Event* q : queries) {
    while (p < inserts.size() && inserts[p]->fee_rank > q->fee_rank) {
      block_bit.add(inserts[p]->block_rank, +1);
      ++visible;
      ++p;
    }
    // Visible transactions out-fee q; those also committed in a LATER
    // block than q's jumped the queue illegitimately.
    viol[q->tx_index] += visible - block_bit.prefix(q->block_rank + 1);
  }
  for (std::size_t k = 0; k < p; ++k) block_bit.add(inserts[k]->block_rank, -1);
}

struct SweepCounts {
  std::uint64_t predicted = 0;
  std::vector<std::uint64_t> violations_per_tx;  ///< indexed like txs
};

/// Exact counts over arrival-sorted @p txs.
SweepCounts exact_counts(const std::vector<SeenTx>& txs, SimTime epsilon) {
  SweepCounts out;
  out.violations_per_tx.assign(txs.size(), 0);
  if (txs.size() < 2) return out;

  std::vector<double> fees;
  std::vector<std::uint64_t> heights;
  fees.reserve(txs.size());
  heights.reserve(txs.size());
  for (const SeenTx& t : txs) {
    fees.push_back(t.fee_rate);
    heights.push_back(t.block_height);
  }
  std::sort(fees.begin(), fees.end());
  fees.erase(std::unique(fees.begin(), fees.end()), fees.end());
  std::sort(heights.begin(), heights.end());
  heights.erase(std::unique(heights.begin(), heights.end()), heights.end());

  std::vector<Event> events;
  events.reserve(2 * txs.size());
  for (std::size_t i = 0; i < txs.size(); ++i) {
    const auto fee_rank = static_cast<std::uint32_t>(
        std::lower_bound(fees.begin(), fees.end(), txs[i].fee_rate) - fees.begin());
    const auto block_rank = static_cast<std::uint32_t>(
        std::lower_bound(heights.begin(), heights.end(), txs[i].block_height) -
        heights.begin());
    const auto index = static_cast<std::uint32_t>(i);
    events.push_back(Event{txs[i].first_seen, false, fee_rank, block_rank, index});
    events.push_back(
        Event{txs[i].first_seen + epsilon, true, fee_rank, block_rank, index});
  }
  std::sort(events.begin(), events.end(), event_order);

  // Pass 1 — predicted pairs: Fenwick over fee ranks, single time sweep.
  Fenwick fee_bit(fees.size());
  std::uint64_t visible = 0;
  for (const Event& e : events) {
    if (e.is_insert) {
      fee_bit.add(e.fee_rank, +1);
      ++visible;
    } else {
      out.predicted += visible - fee_bit.prefix(e.fee_rank + 1);
    }
  }

  // Pass 2 — violations: add the block dimension via CDQ.
  Fenwick block_bit(heights.size());
  cdq_violations(events, 0, events.size(), block_bit, out.violations_per_tx);
  return out;
}

}  // namespace

PairViolationStats count_pair_violations(std::vector<SeenTx> txs,
                                         SimTime epsilon,
                                         bool exclude_cpfp,
                                         std::size_t max_txs,
                                         PairAlgorithm algorithm) {
  txs = prepare(std::move(txs), exclude_cpfp, max_txs);
  if (epsilon < 0) epsilon = 0;

  PairViolationStats out;
  if (algorithm == PairAlgorithm::kBruteForce) {
    for (std::size_t i = 0; i < txs.size(); ++i) {
      for (std::size_t j = i + 1; j < txs.size(); ++j) {
        // txs sorted by arrival: i earlier than j.
        if (txs[i].first_seen + epsilon >= txs[j].first_seen) continue;
        if (txs[i].fee_rate <= txs[j].fee_rate) continue;
        ++out.predicted_pairs;
        if (txs[i].block_height > txs[j].block_height) ++out.violations;
      }
    }
    return out;
  }

  const SweepCounts counts = exact_counts(txs, epsilon);
  out.predicted_pairs = counts.predicted;
  for (const std::uint64_t v : counts.violations_per_tx) out.violations += v;
  return out;
}

std::unordered_map<std::uint64_t, std::uint64_t> violations_by_block(
    std::vector<SeenTx> txs, SimTime epsilon, bool exclude_cpfp,
    std::size_t max_txs, PairAlgorithm algorithm) {
  txs = prepare(std::move(txs), exclude_cpfp, max_txs);
  if (epsilon < 0) epsilon = 0;

  std::unordered_map<std::uint64_t, std::uint64_t> out;
  if (algorithm == PairAlgorithm::kBruteForce) {
    for (std::size_t i = 0; i < txs.size(); ++i) {
      for (std::size_t j = i + 1; j < txs.size(); ++j) {
        if (txs[i].first_seen + epsilon >= txs[j].first_seen) continue;
        if (txs[i].fee_rate <= txs[j].fee_rate) continue;
        if (txs[i].block_height > txs[j].block_height) {
          ++out[txs[j].block_height];
        }
      }
    }
    return out;
  }

  const SweepCounts counts = exact_counts(txs, epsilon);
  for (std::size_t j = 0; j < txs.size(); ++j) {
    if (counts.violations_per_tx[j] > 0) {
      out[txs[j].block_height] += counts.violations_per_tx[j];
    }
  }
  return out;
}

}  // namespace cn::core

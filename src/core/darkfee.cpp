#include "core/darkfee.hpp"

#include <algorithm>

#include "core/sppe.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace cn::core {

namespace {

/// Visits every (block, position, sppe) of the pool's blocks.
template <typename Fn>
void for_each_pool_tx_sppe(const btc::Chain& chain,
                           const PoolAttribution& attribution,
                           const std::string& pool, Fn&& fn) {
  for (const btc::Block& block : chain.blocks()) {
    const auto owner = attribution.pool_of(block.height());
    if (!owner.has_value() || *owner != pool) continue;
    const std::vector<double> sppe = block_sppe(block);
    for (std::size_t i = 0; i < sppe.size(); ++i) fn(block, i, sppe[i]);
  }
}

}  // namespace

std::vector<DarkFeeBucket> darkfee_buckets(const btc::Chain& chain,
                                           const PoolAttribution& attribution,
                                           const std::string& pool,
                                           const IsAcceleratedFn& is_accelerated,
                                           const std::vector<double>& thresholds) {
  std::vector<DarkFeeBucket> buckets;
  buckets.reserve(thresholds.size());
  for (double t : thresholds) buckets.push_back(DarkFeeBucket{t, 0, 0});

  for_each_pool_tx_sppe(
      chain, attribution, pool,
      [&](const btc::Block& block, std::size_t pos, double sppe) {
        for (DarkFeeBucket& bucket : buckets) {
          if (sppe >= bucket.sppe_threshold) {
            ++bucket.tx_count;
            if (is_accelerated(block.txs()[pos].id())) ++bucket.accelerated;
          }
        }
      });
  return buckets;
}

std::uint64_t accelerated_in_random_sample(const btc::Chain& chain,
                                           const PoolAttribution& attribution,
                                           const std::string& pool,
                                           const IsAcceleratedFn& is_accelerated,
                                           std::size_t sample_size,
                                           std::uint64_t seed) {
  // Collect the pool's committed txids once, then sample without
  // replacement.
  std::vector<btc::Txid> ids;
  for (const btc::Block& block : chain.blocks()) {
    const auto owner = attribution.pool_of(block.height());
    if (!owner.has_value() || *owner != pool) continue;
    for (const btc::Transaction& tx : block.txs()) ids.push_back(tx.id());
  }
  if (ids.empty()) return 0;

  Rng rng(seed);
  rng.shuffle(ids);
  const std::size_t n = std::min(sample_size, ids.size());
  std::uint64_t hits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (is_accelerated(ids[i])) ++hits;
  }
  return hits;
}

std::vector<TxRef> detect_accelerated(const btc::Chain& chain,
                                      const PoolAttribution& attribution,
                                      const std::string& pool, double threshold) {
  std::vector<TxRef> out;
  for_each_pool_tx_sppe(chain, attribution, pool,
                        [&](const btc::Block& block, std::size_t pos, double sppe) {
                          if (sppe >= threshold) {
                            out.push_back(TxRef{block.height(), pos});
                          }
                        });
  return out;
}

std::vector<TxIdx> detect_accelerated(const AuditDataset& dataset, PoolId pool,
                                      double threshold) {
  std::vector<TxIdx> out;
  const std::span<const double> sppe = dataset.sppe();
  for (const std::uint32_t b : dataset.blocks_of_pool(pool)) {
    for (TxIdx t = dataset.tx_begin(b); t < dataset.tx_end(b); ++t) {
      if (sppe[t] >= threshold) out.push_back(t);  // NaN never qualifies
    }
  }
  return out;
}

std::uint64_t count_accelerated(const AuditDataset& dataset, PoolId pool,
                                double threshold) {
  std::uint64_t n = 0;
  const std::span<const double> sppe = dataset.sppe();
  for (const std::uint32_t b : dataset.blocks_of_pool(pool)) {
    for (TxIdx t = dataset.tx_begin(b); t < dataset.tx_end(b); ++t) {
      if (sppe[t] >= threshold) ++n;
    }
  }
  return n;
}

}  // namespace cn::core

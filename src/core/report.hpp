// Shared presentation helpers for benches and examples: fixed-width
// console tables, CDF summaries, and CSV export of distribution series.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "stats/descriptive.hpp"
#include "stats/ecdf.hpp"

namespace cn::core {

/// Fixed-width console table. Column widths come from the header row;
/// cells are right-aligned (numbers) by default.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers,
                        std::vector<int> widths = {});

  void print_header(std::FILE* out = stdout) const;
  void print_row(const std::vector<std::string>& cells,
                 std::FILE* out = stdout) const;
  void print_rule(std::FILE* out = stdout) const;

 private:
  std::vector<std::string> headers_;
  std::vector<int> widths_;
};

/// "p < 0.001"-style formatting for p-values (4 decimals otherwise).
std::string format_p_value(double p);

/// Prints "name: p10=.. p25=.. p50=.. p75=.. p90=.. p99=.." for a CDF.
void print_cdf_summary(const std::string& name, const stats::Ecdf& ecdf,
                       std::FILE* out = stdout);

/// Prints a Summary as one row: count mean std min p25 median p75 max.
void print_summary_row(const std::string& label, const stats::Summary& s,
                       std::FILE* out = stdout);

/// Writes a CDF as (value, cumulative_fraction) CSV rows.
/// Returns false if the file could not be opened.
bool write_cdf_csv(const std::string& path, const stats::Ecdf& ecdf,
                   const std::string& value_label);

}  // namespace cn::core

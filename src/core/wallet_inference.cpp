#include "core/wallet_inference.hpp"

#include <algorithm>

namespace cn::core {

PoolAttribution::PoolAttribution(const btc::Chain& chain,
                                 const btc::CoinbaseTagRegistry& registry) {
  for (const btc::Block& block : chain.blocks()) {
    ++total_blocks_;
    const auto pool = registry.identify(block.coinbase().tag);
    if (!pool.has_value()) {
      ++unidentified_;
      continue;
    }
    by_height_.emplace(block.height(), *pool);
    ++counts_[*pool];
    wallets_[*pool].insert(block.coinbase().reward_address);
  }
}

std::optional<std::string> PoolAttribution::pool_of(std::uint64_t height) const {
  const auto it = by_height_.find(height);
  if (it == by_height_.end()) return std::nullopt;
  return it->second;
}

std::uint64_t PoolAttribution::blocks_of(const std::string& pool) const noexcept {
  const auto it = counts_.find(pool);
  return it == counts_.end() ? 0 : it->second;
}

double PoolAttribution::hash_share(const std::string& pool) const noexcept {
  if (total_blocks_ == 0) return 0.0;
  return static_cast<double>(blocks_of(pool)) / static_cast<double>(total_blocks_);
}

const std::unordered_set<btc::Address>& PoolAttribution::wallets_of(
    const std::string& pool) const {
  static const std::unordered_set<btc::Address> kEmpty;
  const auto it = wallets_.find(pool);
  return it == wallets_.end() ? kEmpty : it->second;
}

std::vector<std::string> PoolAttribution::pools_by_blocks() const {
  std::vector<std::string> names;
  names.reserve(counts_.size());
  for (const auto& [name, count] : counts_) names.push_back(name);
  std::sort(names.begin(), names.end(), [this](const auto& a, const auto& b) {
    const std::uint64_t ca = blocks_of(a), cb = blocks_of(b);
    if (ca != cb) return ca > cb;
    return a < b;
  });
  return names;
}

std::vector<TxRef> self_interest_txs(const btc::Chain& chain,
                                     const PoolAttribution& attribution,
                                     const std::string& pool) {
  std::vector<TxRef> out;
  const auto& wallets = attribution.wallets_of(pool);
  if (wallets.empty()) return out;
  for (const btc::Block& block : chain.blocks()) {
    for (std::size_t i = 0; i < block.txs().size(); ++i) {
      const btc::Transaction& tx = block.txs()[i];
      bool involved = false;
      for (const btc::TxInput& in : tx.inputs()) {
        if (wallets.contains(in.owner)) {
          involved = true;
          break;
        }
      }
      if (!involved) {
        for (const btc::TxOutput& o : tx.outputs()) {
          if (wallets.contains(o.to)) {
            involved = true;
            break;
          }
        }
      }
      if (involved) out.push_back(TxRef{block.height(), i});
    }
  }
  return out;
}

std::vector<TxRef> txs_paying_to(const btc::Chain& chain, btc::Address address) {
  std::vector<TxRef> out;
  for (const btc::Block& block : chain.blocks()) {
    for (std::size_t i = 0; i < block.txs().size(); ++i) {
      if (block.txs()[i].pays_to(address)) out.push_back(TxRef{block.height(), i});
    }
  }
  return out;
}

}  // namespace cn::core

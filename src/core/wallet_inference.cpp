#include "core/wallet_inference.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace cn::core {

PoolAttribution::PoolAttribution(const btc::Chain& chain,
                                 const btc::CoinbaseTagRegistry& registry) {
  total_blocks_ = chain.size();
  first_height_ = chain.empty() ? 0 : chain.blocks().front().height();
  by_height_.assign(chain.size(), kNoPoolId);
  for (const btc::Block& block : chain.blocks()) {
    const auto pool = registry.identify(block.coinbase().tag);
    if (!pool.has_value()) {
      ++unidentified_;
      continue;
    }
    const PoolId id = intern(*pool);
    by_height_[block.height() - first_height_] = id;
    ++counts_[id];
    wallets_[id].insert(block.coinbase().reward_address);
  }
}

PoolId PoolAttribution::intern(const std::string& name) {
  const auto [it, inserted] = ids_.try_emplace(name, static_cast<PoolId>(names_.size()));
  if (inserted) {
    names_.push_back(name);
    counts_.push_back(0);
    wallets_.emplace_back();
  }
  return it->second;
}

const std::string& PoolAttribution::name_of(PoolId id) const {
  CN_ASSERT(id < names_.size());
  return names_[id];
}

std::optional<PoolId> PoolAttribution::id_of(const std::string& pool) const {
  const auto it = ids_.find(pool);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

PoolId PoolAttribution::pool_id_at(std::uint64_t height) const noexcept {
  if (height < first_height_) return kNoPoolId;
  const std::uint64_t slot = height - first_height_;
  if (slot >= by_height_.size()) return kNoPoolId;
  return by_height_[slot];
}

std::uint64_t PoolAttribution::blocks_of(PoolId id) const noexcept {
  return id < counts_.size() ? counts_[id] : 0;
}

double PoolAttribution::hash_share(PoolId id) const noexcept {
  if (total_blocks_ == 0) return 0.0;
  return static_cast<double>(blocks_of(id)) / static_cast<double>(total_blocks_);
}

const std::unordered_set<btc::Address>& PoolAttribution::wallets_of(PoolId id) const {
  static const std::unordered_set<btc::Address> kEmpty;
  return id < wallets_.size() ? wallets_[id] : kEmpty;
}

std::vector<PoolId> PoolAttribution::pool_ids_by_blocks() const {
  std::vector<PoolId> ids(names_.size());
  for (PoolId id = 0; id < ids.size(); ++id) ids[id] = id;
  std::sort(ids.begin(), ids.end(), [this](PoolId a, PoolId b) {
    if (counts_[a] != counts_[b]) return counts_[a] > counts_[b];
    return names_[a] < names_[b];
  });
  return ids;
}

std::optional<std::string> PoolAttribution::pool_of(std::uint64_t height) const {
  const PoolId id = pool_id_at(height);
  if (id == kNoPoolId) return std::nullopt;
  return names_[id];
}

std::uint64_t PoolAttribution::blocks_of(const std::string& pool) const noexcept {
  const auto it = ids_.find(pool);
  return it == ids_.end() ? 0 : counts_[it->second];
}

double PoolAttribution::hash_share(const std::string& pool) const noexcept {
  if (total_blocks_ == 0) return 0.0;
  return static_cast<double>(blocks_of(pool)) / static_cast<double>(total_blocks_);
}

const std::unordered_set<btc::Address>& PoolAttribution::wallets_of(
    const std::string& pool) const {
  static const std::unordered_set<btc::Address> kEmpty;
  const auto it = ids_.find(pool);
  return it == ids_.end() ? kEmpty : wallets_[it->second];
}

std::vector<std::string> PoolAttribution::pools_by_blocks() const {
  std::vector<std::string> names;
  names.reserve(names_.size());
  for (const PoolId id : pool_ids_by_blocks()) names.push_back(names_[id]);
  return names;
}

std::vector<TxRef> self_interest_txs(const btc::Chain& chain,
                                     const PoolAttribution& attribution,
                                     const std::string& pool) {
  std::vector<TxRef> out;
  const auto& wallets = attribution.wallets_of(pool);
  if (wallets.empty()) return out;
  for (const btc::Block& block : chain.blocks()) {
    for (std::size_t i = 0; i < block.txs().size(); ++i) {
      const btc::Transaction& tx = block.txs()[i];
      bool involved = false;
      for (const btc::TxInput& in : tx.inputs()) {
        if (wallets.contains(in.owner)) {
          involved = true;
          break;
        }
      }
      if (!involved) {
        for (const btc::TxOutput& o : tx.outputs()) {
          if (wallets.contains(o.to)) {
            involved = true;
            break;
          }
        }
      }
      if (involved) out.push_back(TxRef{block.height(), i});
    }
  }
  return out;
}

std::vector<TxRef> txs_paying_to(const btc::Chain& chain, btc::Address address) {
  std::vector<TxRef> out;
  for (const btc::Block& block : chain.blocks()) {
    for (std::size_t i = 0; i < block.txs().size(); ++i) {
      if (block.txs()[i].pays_to(address)) out.push_back(TxRef{block.height(), i});
    }
  }
  return out;
}

}  // namespace cn::core

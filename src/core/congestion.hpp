// Congestion, fee, and commit-delay analytics (paper §4.1, Figures 3-5,
// 9-12): Mempool occupancy, per-transaction commit delays in blocks, and
// how fee-rates respond to (and buy relief from) congestion.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "btc/chain.hpp"
#include "core/pair_violations.hpp"
#include "node/snapshot.hpp"

namespace cn::core {

class AuditDataset;

/// Looks up an observer's first-seen time for a txid.
using FirstSeenFn = std::function<std::optional<SimTime>(const btc::Txid&)>;

/// Builds the per-committed-transaction view (arrival, fee-rate, block,
/// CPFP flags) used by the violation and delay analyses. Transactions the
/// observer never saw pending are omitted.
std::vector<SeenTx> collect_seen_txs(const btc::Chain& chain,
                                     const FirstSeenFn& first_seen);

/// Columnar variant: reads the dataset's cached fee-rate / height / CPFP
/// flag columns instead of re-deriving them per block. Same entries in
/// the same order as the chain overload.
std::vector<SeenTx> collect_seen_txs(const AuditDataset& dataset,
                                     const FirstSeenFn& first_seen);

/// The subset of @p txs pending at time @p t: seen at or before t but
/// committed in a block mined after t.
std::vector<SeenTx> pending_at(std::span<const SeenTx> txs, const btc::Chain& chain,
                               SimTime t);

/// Commit delay in blocks for each transaction: the number of blocks
/// mined after the observer saw it, up to and including its commit block
/// (1 = "committed in the very next block"). Entries whose commit block
/// predates the arrival (propagation races) are clamped to 1.
std::vector<double> commit_delays_blocks(const btc::Chain& chain,
                                         std::span<const SeenTx> txs);

/// The paper's fee-rate bands (Fig 5/12): low < 1e-4 BTC/KB (10 sat/vB),
/// high in [1e-4, 1e-3), exorbitant >= 1e-3 BTC/KB (100 sat/vB).
enum class FeeBand { kLow, kHigh, kExorbitant };
FeeBand fee_band(double sat_per_vb) noexcept;

/// Fee-rates (sat/vB) of all transactions.
std::vector<double> all_fee_rates(std::span<const SeenTx> txs);

/// Fee-rates of transactions issued while the Mempool was at @p level
/// (level measured from the observer's snapshot series, with congestion
/// bins relative to @p unit_vsize).
std::vector<double> fee_rates_at_level(std::span<const SeenTx> txs,
                                       const node::SnapshotSeries& series,
                                       std::uint64_t unit_vsize,
                                       node::CongestionLevel level);

/// Delays (blocks) restricted to one fee band. @p delays must be
/// index-aligned with @p txs (as produced by commit_delays_blocks).
std::vector<double> delays_for_band(std::span<const SeenTx> txs,
                                    std::span<const double> delays, FeeBand band);

/// Fee-rates of transactions committed in blocks attributed to @p pool
/// (Fig 10). Uses the block heights recorded in the SeenTx view.
std::vector<double> fee_rates_of_pool(
    std::span<const SeenTx> txs,
    const std::function<bool(std::uint64_t height)>& is_pool_block);

}  // namespace cn::core

// Columnar (structure-of-arrays) view of a chain for the audit layer.
//
// The audit's analyses (§4-§6) are embarrassingly columnar: every one of
// them scans {fee_rate, vsize, first_seen, position} over contiguous
// block ranges and filters by pool identity. Walking btc::Chain object
// graphs and keying hot-path state on std::string pool names re-hashes
// the same strings millions of times; AuditDataset is built ONCE per
// chain and replaces all of that with flat arrays addressed by dense
// interned ids:
//
//   * PoolId    — interned pool name (core/wallet_inference.hpp);
//   * TxIdx     — chain-global transaction ordinal, assigned in
//                 (block, position) commit order;
//   * AddressId — interned wallet (btc/intern.hpp).
//
// Span invariants (every analysis relies on these):
//   * blocks appear in height order; heights are contiguous, so block
//     ordinal b corresponds to height block_heights()[0] + b;
//   * the transactions of block b occupy the contiguous TxIdx range
//     [tx_begin(b), tx_end(b)), in observed block position order — the
//     position of TxIdx t is t - tx_begin(block_of(t));
//   * per-pool lists (blocks_of_pool, self_interest_txs) are ascending,
//     which downstream code exploits for run-length c-block counting;
//   * block_ppe()[b] and sppe()[t] cache the values of core/ppe.hpp and
//     core/sppe.hpp verbatim, with quiet NaN standing in for "undefined"
//     (fewer than 2 retained/total transactions) — consumers skip NaN
//     exactly where the object-graph path skipped the missing value, so
//     reports stay byte-identical to the legacy pipeline.
//
// The build fans out per block over a util::ThreadPool: each block's
// task writes only its own slots, so the dataset is bit-identical for
// every thread count.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "btc/chain.hpp"
#include "btc/intern.hpp"
#include "core/wallet_inference.hpp"
#include "util/time.hpp"

namespace cn::util {
class ThreadPool;
}

namespace cn::core {

/// Chain-global transaction ordinal in (block, position) commit order.
using TxIdx = std::uint32_t;

/// Per-transaction flags in AuditDataset::tx_flags().
enum TxFlag : std::uint8_t {
  kTxCpfpChild = 1u << 0,   ///< spends an earlier in-block output (§E)
  kTxCpfpParent = 1u << 1,  ///< parent rescued by an in-block CPFP child
  kTxBelowFloor = 1u << 2,  ///< exact fee-rate < 1 sat/vB (norm III)
};

/// Deserialized column bundle for AuditDataset::restore() — a
/// field-for-field mirror of the private columns, produced by the CNB1
/// loader (io/cnb.cpp) after it has bounds-checked every array. The
/// spans must satisfy the invariants in the file comment; restore()
/// trusts them and only derives what build() derives (tx_block_).
struct AuditDatasetColumns {
  std::vector<std::string> pool_names;
  std::vector<PoolId> pools_by_blocks;
  std::vector<std::uint64_t> block_height;
  std::vector<SimTime> block_mined_at;
  std::vector<PoolId> block_pool;
  std::vector<std::int64_t> block_fees;
  std::vector<double> block_ppe;
  std::vector<TxIdx> tx_begin;  // size block_count + 1
  std::vector<double> fee_rate;
  std::vector<std::uint32_t> vsize;
  std::vector<SimTime> issued;
  std::vector<btc::Txid> txid;
  std::vector<std::uint8_t> tx_flags;
  std::vector<double> sppe;
  btc::AddressTable addresses;
  std::vector<std::uint32_t> out_begin;  // size tx_count + 1
  std::vector<btc::AddressId> out_addr;
  std::vector<std::vector<std::uint32_t>> pool_blocks;
  std::vector<std::uint64_t> pool_tx_counts;
  std::vector<std::vector<TxIdx>> self_interest;
};

class AuditDataset {
 public:
  AuditDataset() = default;

  /// Builds the columnar view. @p interned_addresses may carry a table an
  /// importer produced during load (io::import_chain); it is copied and
  /// extended as needed, so the ids stay stable for the caller.
  static AuditDataset build(const btc::Chain& chain,
                            const PoolAttribution& attribution,
                            util::ThreadPool& workers,
                            const btc::AddressTable* interned_addresses = nullptr);

  /// Rebuilds a dataset from deserialized columns without touching a
  /// chain: every column is adopted as-is and tx_block_ is derived from
  /// the tx_begin CSR, so a restored dataset is indistinguishable from
  /// the build() that produced the columns.
  static AuditDataset restore(AuditDatasetColumns&& columns);

  // --- sizes ---------------------------------------------------------
  std::size_t block_count() const noexcept { return block_height_.size(); }
  std::size_t tx_count() const noexcept { return fee_rate_.size(); }
  std::size_t pool_count() const noexcept { return pool_names_.size(); }
  bool empty() const noexcept { return block_height_.empty(); }

  // --- pool tables (mirrors PoolAttribution) -------------------------
  const std::string& pool_name(PoolId id) const;
  std::uint64_t blocks_of(PoolId id) const noexcept {
    return id < pool_blocks_.size() ? pool_blocks_[id].size() : 0;
  }
  /// blocks_of(id) / block_count() — same estimate the attribution uses.
  double hash_share(PoolId id) const noexcept;
  /// Ids ordered by descending block count (ties by name).
  std::span<const PoolId> pools_by_blocks() const noexcept { return pools_by_blocks_; }

  // --- block columns (index = block ordinal) -------------------------
  std::span<const std::uint64_t> block_heights() const noexcept { return block_height_; }
  std::span<const SimTime> block_mined_at() const noexcept { return block_mined_at_; }
  std::span<const PoolId> block_pool() const noexcept { return block_pool_; }
  std::span<const std::int64_t> block_fees() const noexcept { return block_fees_; }
  /// Cached core/ppe.hpp block_ppe per block; NaN when undefined.
  std::span<const double> block_ppe() const noexcept { return block_ppe_; }

  TxIdx tx_begin(std::size_t block) const noexcept { return tx_begin_[block]; }
  TxIdx tx_end(std::size_t block) const noexcept { return tx_begin_[block + 1]; }

  // --- transaction columns (index = TxIdx) ---------------------------
  std::span<const double> fee_rate() const noexcept { return fee_rate_; }
  std::span<const std::uint32_t> vsize() const noexcept { return vsize_; }
  std::span<const SimTime> issued() const noexcept { return issued_; }
  std::span<const btc::Txid> txids() const noexcept { return txid_; }
  std::span<const std::uint8_t> tx_flags() const noexcept { return tx_flags_; }
  /// Cached core/sppe.hpp block_sppe per transaction; NaN when the block
  /// has fewer than 2 transactions.
  std::span<const double> sppe() const noexcept { return sppe_; }
  /// Block ordinal a transaction was committed in.
  std::uint32_t block_of(TxIdx t) const noexcept { return tx_block_[t]; }
  /// Observed position inside its block.
  std::size_t position_of(TxIdx t) const noexcept {
    return t - tx_begin_[tx_block_[t]];
  }
  std::uint64_t height_of(TxIdx t) const noexcept {
    return block_height_[tx_block_[t]];
  }

  // --- outputs (interned) --------------------------------------------
  const btc::AddressTable& addresses() const noexcept { return addresses_; }
  std::span<const btc::AddressId> out_addrs_of(TxIdx t) const noexcept {
    return std::span<const btc::AddressId>(out_addr_)
        .subspan(out_begin_[t], out_begin_[t + 1] - out_begin_[t]);
  }

  // --- per-pool precomputes ------------------------------------------
  /// Ascending block ordinals attributed to the pool.
  std::span<const std::uint32_t> blocks_of_pool(PoolId id) const;
  /// Committed transactions of the pool's blocks (sum over its blocks).
  std::uint64_t pool_tx_count(PoolId id) const noexcept;
  /// Ascending TxIdx of transactions spending from or paying to one of
  /// the pool's inferred wallets (same set and order as
  /// core/wallet_inference.hpp self_interest_txs).
  std::span<const TxIdx> self_interest_txs(PoolId id) const;

  /// Ascending TxIdx of transactions paying to @p address (scam-wallet
  /// filter); empty when the address was never seen.
  std::vector<TxIdx> txs_paying_to(btc::Address address) const;

  /// TxRef view of a TxIdx (bridging to object-graph call sites).
  TxRef ref_of(TxIdx t) const noexcept {
    return TxRef{height_of(t), position_of(t)};
  }

  /// Approximate heap footprint of every column, for telemetry
  /// (BENCH_dataset_build.json reports this as bytes/tx).
  std::size_t memory_bytes() const noexcept;

 private:
  // pool tables
  std::vector<std::string> pool_names_;
  std::vector<PoolId> pools_by_blocks_;

  // block columns
  std::vector<std::uint64_t> block_height_;
  std::vector<SimTime> block_mined_at_;
  std::vector<PoolId> block_pool_;
  std::vector<std::int64_t> block_fees_;
  std::vector<double> block_ppe_;
  std::vector<TxIdx> tx_begin_;  // size block_count()+1

  // transaction columns
  std::vector<double> fee_rate_;
  std::vector<std::uint32_t> vsize_;
  std::vector<SimTime> issued_;
  std::vector<btc::Txid> txid_;
  std::vector<std::uint8_t> tx_flags_;
  std::vector<double> sppe_;
  std::vector<std::uint32_t> tx_block_;

  // outputs
  btc::AddressTable addresses_;
  std::vector<std::uint32_t> out_begin_;  // size tx_count()+1
  std::vector<btc::AddressId> out_addr_;

  // per-pool precomputes
  std::vector<std::vector<std::uint32_t>> pool_blocks_;
  std::vector<std::uint64_t> pool_tx_counts_;
  std::vector<std::vector<TxIdx>> self_interest_;
};

}  // namespace cn::core

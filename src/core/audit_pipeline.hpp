// One-call audit pipeline: everything the paper's §4-§5 methodology does
// to a chain, bundled behind a single entry point.
//
//   AuditReport report = run_full_audit(chain, registry, options);
//   print_audit_report(report);
//
// The pipeline sees only public data (the chain and coinbase markers) —
// never simulator ground truth — so it runs unchanged on imported
// (io::import_chain) data sets, including, in principle, real ones.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "btc/chain.hpp"
#include "btc/coinbase_tags.hpp"
#include "core/data_quality.hpp"
#include "core/neutrality.hpp"
#include "core/prio_test.hpp"
#include "core/wallet_inference.hpp"
#include "stats/bootstrap.hpp"
#include "stats/descriptive.hpp"

namespace cn::core {

struct AuditOptions {
  /// Significance level for all hypothesis tests (paper: 0.001 implied by
  /// "p-value less than 0.001").
  double alpha = 0.001;
  /// Pools below this hash share are not tested (small pools lack power).
  double min_share = 0.03;
  /// SPPE cutoff for dark-fee suspicion (Table 4's strong signal).
  double darkfee_sppe_threshold = 99.0;
  /// Addresses to screen for acceleration/deceleration (e.g. scam
  /// wallets, §5.3).
  std::vector<btc::Address> watch_addresses;
  NeutralityOptions neutrality;
  /// Resamples for the SPPE confidence interval (0 disables the CI).
  std::size_t bootstrap_resamples = 500;
  /// Execution lanes for the fan-out stages (pool-pair tests, screens,
  /// dark-fee detection, bootstrap CIs): 0 = hardware concurrency,
  /// 1 = fully serial. The report is byte-identical for every value —
  /// tasks use per-task stable_hash64 RNG seeds and results merge in a
  /// fixed index order.
  unsigned threads = 0;
  /// Blocks whose effective coverage (see data_quality.hpp) falls below
  /// this are masked from the norm statistics, and findings resting on a
  /// pool whose mean coverage is below it are downgraded to
  /// "insufficient data". Only applies when a DataQualityReport is
  /// passed to run_full_audit.
  double min_coverage = 0.5;
};

/// A confirmed differential-prioritization finding (§5.2 / Table 2).
struct AccelerationFinding {
  std::string tx_owner;  ///< whose transactions
  std::string miner;     ///< who prioritized them
  bool collusion = false;  ///< owner != miner
  PrioTestResult test;
  stats::BootstrapCi sppe_ci;  ///< CI over per-tx SPPE in the miner's blocks
  /// Mean effective coverage over the miner's blocks (1.0 when no data
  /// quality report was supplied).
  double coverage = 1.0;
  /// Coverage below AuditOptions::min_coverage: the statistic rests on
  /// too little observed data to report as a firm conclusion.
  bool insufficient_data = false;
};

/// Per-pool screen of a watched address (§5.3 / Table 3).
struct WatchedAddressScreen {
  btc::Address address{};
  std::size_t tx_count = 0;
  std::vector<PrioTestResult> per_pool;
  bool any_significant = false;
};

/// Per-pool dark-fee suspicion counts (Table 4's detector without the
/// service-validation leg, which needs the service's query API).
struct DarkFeeSuspicion {
  std::string pool;
  std::uint64_t txs = 0;
  std::uint64_t flagged = 0;
};

struct AuditReport {
  AuditOptions options;
  std::uint64_t blocks = 0;
  std::uint64_t txs = 0;
  std::uint64_t unidentified_blocks = 0;

  stats::Summary ppe;  ///< norm-II adherence across covered blocks
  std::vector<AccelerationFinding> findings;       ///< worst first
  std::vector<WatchedAddressScreen> screens;
  std::vector<DarkFeeSuspicion> darkfee;           ///< most-flagged first
  std::vector<NeutralityReport> neutrality;        ///< worst first

  /// Coverage accounting (meaningful when has_quality).
  bool has_quality = false;
  double mean_coverage = 1.0;
  std::uint64_t snapshot_gaps = 0;
  std::uint64_t masked_blocks = 0;  ///< blocks below min_coverage
  std::vector<std::uint64_t> low_coverage_heights;  ///< ascending
};

/// Runs the whole §4-§5 methodology. The attribution is rebuilt
/// internally from @p registry.
AuditReport run_full_audit(const btc::Chain& chain,
                           const btc::CoinbaseTagRegistry& registry,
                           const AuditOptions& options = {});

/// Coverage-aware variant: norm statistics mask blocks whose effective
/// coverage is below options.min_coverage, and every finding / scorecard
/// is annotated with the coverage fraction it rests on (downgraded to
/// insufficient-data when too low). @p quality may be null (identical to
/// the overload above). The report stays byte-identical across
/// AuditOptions::threads values.
AuditReport run_full_audit(const btc::Chain& chain,
                           const btc::CoinbaseTagRegistry& registry,
                           const DataQualityReport* quality,
                           const AuditOptions& options = {});

/// Human-readable rendering of a report.
void print_audit_report(const AuditReport& report, std::FILE* out = stdout);

}  // namespace cn::core

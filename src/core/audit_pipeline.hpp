// One-call audit pipeline: everything the paper's §4-§5 methodology does
// to a chain, bundled behind a single entry point.
//
//   AuditReport report = run_full_audit(chain, registry, options);
//   print_audit_report(report);
//
// The pipeline sees only public data (the chain and coinbase markers) —
// never simulator ground truth — so it runs unchanged on imported
// (io::import_chain) data sets, including, in principle, real ones.
//
// Internally the audit is a sequence of named stages over one immutable
// AuditContext (DESIGN.md §9):
//
//   build        — attribution + columnar AuditDataset (always runs)
//   quality-mask — coverage accounting from the DataQualityReport (always)
//   norm-stats   — norm-II adherence (PPE summary)
//   pool-tests   — §5.2 cross-pool differential prioritization
//   screens      — §5.3 watched-address screens
//   darkfee      — Table 4 SPPE >= threshold detector
//   neutrality   — §6.1 per-pool scorecards
//   withholding  — block-vs-mempool withholding detector (needs the
//                  observer's first-seen log, AuditOptions::first_seen)
//
// Stages are individually timed (AuditReport::stages) and selectable via
// AuditOptions::stages (cnaudit --stages); a deselected stage is
// reported as [SKIPPED] rather than silently absent. The pre-refactor
// object-graph monolith is kept, bit-for-bit, behind
// AuditEngine::kLegacy as a differential-testing oracle: both engines
// render byte-identical reports at every thread count.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "btc/chain.hpp"
#include "btc/coinbase_tags.hpp"
#include "btc/intern.hpp"
#include "core/audit_dataset.hpp"
#include "core/data_quality.hpp"
#include "core/neutrality.hpp"
#include "core/prio_test.hpp"
#include "core/wallet_inference.hpp"
#include "core/withholding.hpp"
#include "stats/bootstrap.hpp"
#include "stats/descriptive.hpp"

namespace cn::core {

/// Which implementation computes the report. Both produce byte-identical
/// output; kLegacy is the pre-columnar monolith kept as the differential
/// oracle (tests/core/test_audit_differential.cpp).
enum class AuditEngine {
  kColumnar,  ///< staged pipeline over the AuditDataset (default)
  kLegacy,    ///< object-graph monolith (oracle)
};

struct AuditOptions {
  /// Significance level for all hypothesis tests (paper: 0.001 implied by
  /// "p-value less than 0.001").
  double alpha = 0.001;
  /// Pools below this hash share are not tested (small pools lack power).
  double min_share = 0.03;
  /// SPPE cutoff for dark-fee suspicion (Table 4's strong signal).
  double darkfee_sppe_threshold = 99.0;
  /// Addresses to screen for acceleration/deceleration (e.g. scam
  /// wallets, §5.3).
  std::vector<btc::Address> watch_addresses;
  NeutralityOptions neutrality;
  /// Resamples for the SPPE confidence interval (0 disables the CI).
  std::size_t bootstrap_resamples = 500;
  /// Execution lanes for the fan-out stages (pool-pair tests, screens,
  /// dark-fee detection, bootstrap CIs): 0 = hardware concurrency,
  /// 1 = fully serial. The report is byte-identical for every value —
  /// tasks use per-task stable_hash64 RNG seeds and results merge in a
  /// fixed index order.
  unsigned threads = 0;
  /// Blocks whose effective coverage (see data_quality.hpp) falls below
  /// this are masked from the norm statistics, and findings resting on a
  /// pool whose mean coverage is below it are downgraded to
  /// "insufficient data". Only applies when a DataQualityReport is
  /// passed to run_full_audit.
  double min_coverage = 0.5;
  /// Implementation selector (see AuditEngine).
  AuditEngine engine = AuditEngine::kColumnar;
  /// Analysis stages to run (names from audit_stage_names()); empty =
  /// all. "build" and "quality-mask" always run — they are the report's
  /// spine. Columnar engine only; the legacy oracle ignores it.
  std::vector<std::string> stages;
  /// Optional address table an importer produced during load
  /// (io::import_chain); reused by the build stage so the address
  /// universe is hashed once per process instead of once per audit.
  /// Must outlive the run_full_audit call.
  const btc::AddressTable* interned_addresses = nullptr;
  /// Optional dataset a loader already holds (a CNB1 file's derived
  /// sections, io::DatasetHandle::prebuilt_for). When set, the build
  /// stage adopts it instead of calling AuditDataset::build — the
  /// dominant cost of an audit becomes a column copy. The caller
  /// guarantees it was built from this chain under this registry (the
  /// fingerprint gate in prebuilt_for enforces the registry half); it
  /// must outlive the run_full_audit call. Columnar engine only; the
  /// legacy oracle never touches a dataset.
  const AuditDataset* prebuilt_dataset = nullptr;
  /// Optional observer first-seen log (txid -> first-seen time; the
  /// underlying type of io::FirstSeenMap — core stays io-free). When
  /// set, the "withholding" stage runs the block-vs-mempool withholding
  /// detector (core/withholding.hpp); when null the stage is a no-op and
  /// the rendered report is unchanged. Must outlive run_full_audit.
  const std::unordered_map<btc::Txid, SimTime>* first_seen = nullptr;
  /// Thresholds for the withholding detector.
  WithholdingOptions withholding;
};

/// One named pipeline stage with its wall-clock cost (columnar engine
/// only; the legacy oracle reports no stages).
struct AuditStage {
  std::string name;
  double seconds = 0.0;
  bool ran = false;
};

/// Stage names in execution order, for --stages validation and help.
const std::vector<std::string>& audit_stage_names();

/// The immutable state every analysis stage reads: the raw inputs plus
/// the derived attribution, columnar dataset, tested-pool list, and
/// per-pool coverage. Built by the "build" and "quality-mask" stages,
/// then shared read-only across the fan-out — which is what makes the
/// staged pipeline trivially thread-safe and, with index-ordered merges,
/// byte-identical at every thread count.
struct AuditContext {
  const btc::Chain& chain;
  const btc::CoinbaseTagRegistry& registry;
  const DataQualityReport* quality = nullptr;
  PoolAttribution attribution;
  AuditDataset dataset;
  /// Pools with hash share >= AuditOptions::min_share, by blocks desc.
  std::vector<PoolId> pools;
  /// PoolId-indexed mean effective coverage (1.0 without quality data).
  std::vector<double> pool_coverage;
};

/// A confirmed differential-prioritization finding (§5.2 / Table 2).
struct AccelerationFinding {
  std::string tx_owner;  ///< whose transactions
  std::string miner;     ///< who prioritized them
  bool collusion = false;  ///< owner != miner
  PrioTestResult test;
  stats::BootstrapCi sppe_ci;  ///< CI over per-tx SPPE in the miner's blocks
  /// Mean effective coverage over the miner's blocks (1.0 when no data
  /// quality report was supplied).
  double coverage = 1.0;
  /// Coverage below AuditOptions::min_coverage: the statistic rests on
  /// too little observed data to report as a firm conclusion.
  bool insufficient_data = false;
};

/// Per-pool screen of a watched address (§5.3 / Table 3).
struct WatchedAddressScreen {
  btc::Address address{};
  std::size_t tx_count = 0;
  std::vector<PrioTestResult> per_pool;
  bool any_significant = false;
};

/// Per-pool dark-fee suspicion counts (Table 4's detector without the
/// service-validation leg, which needs the service's query API).
struct DarkFeeSuspicion {
  std::string pool;
  std::uint64_t txs = 0;
  std::uint64_t flagged = 0;
};

struct AuditReport {
  AuditOptions options;
  std::uint64_t blocks = 0;
  std::uint64_t txs = 0;
  std::uint64_t unidentified_blocks = 0;

  stats::Summary ppe;  ///< norm-II adherence across covered blocks
  std::vector<AccelerationFinding> findings;       ///< worst first
  std::vector<WatchedAddressScreen> screens;
  std::vector<DarkFeeSuspicion> darkfee;           ///< most-flagged first
  std::vector<NeutralityReport> neutrality;        ///< worst first
  /// Block-withholding suspicion (worst first); only populated when a
  /// first-seen log was supplied (has_first_seen).
  std::vector<WithholdingReport> withholding;
  /// True when AuditOptions::first_seen was supplied — gates both the
  /// withholding stage and its report section, so data sets without an
  /// observer log render byte-identically to before the stage existed.
  bool has_first_seen = false;

  /// Coverage accounting (meaningful when has_quality).
  bool has_quality = false;
  double mean_coverage = 1.0;
  std::uint64_t snapshot_gaps = 0;
  std::uint64_t masked_blocks = 0;  ///< blocks below min_coverage
  std::vector<std::uint64_t> low_coverage_heights;  ///< ascending

  /// Per-stage telemetry in execution order (columnar engine; empty for
  /// the legacy oracle).
  std::vector<AuditStage> stages;

  /// True when the named stage was deselected via AuditOptions::stages.
  bool stage_skipped(std::string_view name) const noexcept;
};

/// Runs the whole §4-§5 methodology. The attribution is rebuilt
/// internally from @p registry.
AuditReport run_full_audit(const btc::Chain& chain,
                           const btc::CoinbaseTagRegistry& registry,
                           const AuditOptions& options = {});

/// Coverage-aware variant: norm statistics mask blocks whose effective
/// coverage is below options.min_coverage, and every finding / scorecard
/// is annotated with the coverage fraction it rests on (downgraded to
/// insufficient-data when too low). @p quality may be null (identical to
/// the overload above). The report stays byte-identical across
/// AuditOptions::threads values.
AuditReport run_full_audit(const btc::Chain& chain,
                           const btc::CoinbaseTagRegistry& registry,
                           const DataQualityReport* quality,
                           const AuditOptions& options = {});

/// Human-readable rendering of a report. Skipped stages render as
/// [SKIPPED] markers. @p with_timings appends the per-stage wall-time
/// footer (cnaudit passes true); it defaults off so rendered reports
/// stay deterministic for the byte-identity tests.
void print_audit_report(const AuditReport& report, std::FILE* out = stdout,
                        bool with_timings = false);

namespace detail {
/// The pre-columnar monolith, verbatim (audit_pipeline_legacy.cpp).
/// Reached via AuditOptions::engine = AuditEngine::kLegacy.
AuditReport run_full_audit_legacy(const btc::Chain& chain,
                                  const btc::CoinbaseTagRegistry& registry,
                                  const DataQualityReport* quality,
                                  const AuditOptions& options);
}  // namespace detail

}  // namespace cn::core

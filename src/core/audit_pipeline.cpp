#include "core/audit_pipeline.hpp"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <utility>

#include "core/darkfee.hpp"
#include "core/ppe.hpp"
#include "core/report.hpp"
#include "core/sppe.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace cn::core {

AuditReport run_full_audit(const btc::Chain& chain,
                           const btc::CoinbaseTagRegistry& registry,
                           const AuditOptions& options) {
  return run_full_audit(chain, registry, nullptr, options);
}

AuditReport run_full_audit(const btc::Chain& chain,
                           const btc::CoinbaseTagRegistry& registry,
                           const DataQualityReport* quality,
                           const AuditOptions& options) {
  AuditReport report;
  report.options = options;
  report.blocks = chain.size();
  report.txs = chain.total_tx_count();

  const PoolAttribution attribution(chain, registry);
  report.unidentified_blocks = attribution.unidentified_blocks();

  // Coverage accounting: which blocks the audit may trust, and how much
  // observed data each pool's statistics rest on. All of it is derived
  // deterministically before the fan-out, so threading stays
  // byte-identical.
  report.has_quality = quality != nullptr;
  std::unordered_map<std::string, double> pool_coverage;
  if (quality != nullptr) {
    report.mean_coverage = quality->mean_coverage;
    report.snapshot_gaps = static_cast<std::uint64_t>(quality->gaps.size());
    std::unordered_map<std::string, std::pair<double, std::uint64_t>> acc;
    for (const btc::Block& block : chain.blocks()) {
      const double cov = quality->coverage_at(block.height());
      if (cov < options.min_coverage) {
        report.low_coverage_heights.push_back(block.height());
      }
      if (const auto owner = attribution.pool_of(block.height())) {
        auto& [sum, n] = acc[*owner];
        sum += cov;
        ++n;
      }
    }
    report.masked_blocks =
        static_cast<std::uint64_t>(report.low_coverage_heights.size());
    for (const auto& [pool, sum_n] : acc) {
      pool_coverage[pool] = sum_n.second > 0
                                ? sum_n.first / static_cast<double>(sum_n.second)
                                : 1.0;
    }
  }
  const auto coverage_of_pool = [&](const std::string& pool) {
    const auto it = pool_coverage.find(pool);
    return it != pool_coverage.end() ? it->second : 1.0;
  };

  // Norm II adherence, over trusted blocks only when coverage is graded.
  std::vector<double> ppe;
  if (quality == nullptr) {
    ppe = chain_ppe(chain);
  } else {
    for (const btc::Block& block : chain.blocks()) {
      if (quality->coverage_at(block.height()) < options.min_coverage) continue;
      if (const auto v = block_ppe(block)) ppe.push_back(*v);
    }
  }
  report.ppe = stats::summarize(ppe);

  // Large pools only.
  std::vector<std::string> pools;
  for (const auto& pool : attribution.pools_by_blocks()) {
    if (attribution.hash_share(pool) >= options.min_share) pools.push_back(pool);
  }

  // Fan-out pool for every independent audit stage below. Each task's
  // inputs and RNG seed depend only on its index, and every merge walks
  // the results in index order, so the report is byte-identical whatever
  // the lane count (threads == 1 runs everything inline).
  util::ThreadPool workers(options.threads);

  // §5.2: cross-pool differential prioritization of self-interest txs.
  const auto owner_txs = workers.parallel_map(pools.size(), [&](std::size_t i) {
    return self_interest_txs(chain, attribution, pools[i]);
  });
  // Candidate (owner, miner) pairs in the serial nested-loop order.
  std::vector<std::pair<std::size_t, std::size_t>> candidates;
  candidates.reserve(pools.size() * pools.size());
  for (std::size_t o = 0; o < pools.size(); ++o) {
    if (owner_txs[o].size() < 10) continue;
    for (std::size_t m = 0; m < pools.size(); ++m) candidates.emplace_back(o, m);
  }
  auto candidate_findings = workers.parallel_map(
      candidates.size(),
      [&](std::size_t k) -> std::optional<AccelerationFinding> {
        const auto [o, m] = candidates[k];
        const std::string& owner = pools[o];
        const std::string& miner = pools[m];
        const auto& txs = owner_txs[o];
        const auto test =
            test_differential_prioritization(chain, attribution, miner, txs);
        if (test.p_accelerate >= options.alpha || test.sppe <= 25.0) {
          return std::nullopt;
        }

        AccelerationFinding finding;
        finding.tx_owner = owner;
        finding.miner = miner;
        finding.collusion = owner != miner;
        finding.test = test;
        if (options.bootstrap_resamples > 0) {
          const auto values = sppe_values(chain, txs, attribution, miner);
          if (!values.empty()) {
            finding.sppe_ci = stats::bootstrap_mean_ci(
                values, 0.95, options.bootstrap_resamples,
                stable_hash64(owner + "/" + miner));
          }
        }
        return finding;
      });
  for (auto& finding : candidate_findings) {
    if (finding.has_value()) {
      finding->coverage = coverage_of_pool(finding->miner);
      finding->insufficient_data =
          report.has_quality && finding->coverage < options.min_coverage;
      report.findings.push_back(std::move(*finding));
    }
  }
  std::sort(report.findings.begin(), report.findings.end(),
            [](const AccelerationFinding& a, const AccelerationFinding& b) {
              if (a.test.p_accelerate != b.test.p_accelerate)
                return a.test.p_accelerate < b.test.p_accelerate;
              return a.test.sppe > b.test.sppe;
            });

  // §5.3: watched-address screens (one task per address x pool).
  const auto watched_refs = workers.parallel_map(
      options.watch_addresses.size(), [&](std::size_t a) {
        return txs_paying_to(chain, options.watch_addresses[a]);
      });
  std::vector<PrioTestResult> screen_tests;
  if (!pools.empty()) {
    screen_tests = workers.parallel_map(
        options.watch_addresses.size() * pools.size(), [&](std::size_t k) {
          const std::size_t a = k / pools.size();
          const std::size_t p = k % pools.size();
          return test_differential_prioritization(chain, attribution, pools[p],
                                                  watched_refs[a]);
        });
  }
  for (std::size_t a = 0; a < options.watch_addresses.size(); ++a) {
    WatchedAddressScreen screen;
    screen.address = options.watch_addresses[a];
    screen.tx_count = watched_refs[a].size();
    for (std::size_t p = 0; p < pools.size(); ++p) {
      auto test = std::move(screen_tests[a * pools.size() + p]);
      screen.any_significant = screen.any_significant ||
                               test.p_accelerate < options.alpha ||
                               test.p_decelerate < options.alpha;
      screen.per_pool.push_back(std::move(test));
    }
    report.screens.push_back(std::move(screen));
  }

  // Table 4 detector (counts only; validation needs the service API).
  report.darkfee = workers.parallel_map(pools.size(), [&](std::size_t p) {
    DarkFeeSuspicion suspicion;
    suspicion.pool = pools[p];
    for (const btc::Block& block : chain.blocks()) {
      const auto owner = attribution.pool_of(block.height());
      if (owner.has_value() && *owner == pools[p]) suspicion.txs += block.tx_count();
    }
    suspicion.flagged = detect_accelerated(chain, attribution, pools[p],
                                           options.darkfee_sppe_threshold)
                            .size();
    return suspicion;
  });
  std::sort(report.darkfee.begin(), report.darkfee.end(),
            [](const DarkFeeSuspicion& a, const DarkFeeSuspicion& b) {
              const double ra = a.txs ? static_cast<double>(a.flagged) / a.txs : 0;
              const double rb = b.txs ? static_cast<double>(b.flagged) / b.txs : 0;
              if (ra != rb) return ra > rb;
              return a.pool < b.pool;
            });

  // §6.1 scorecard, fanned out per pool (each pool's report scans the
  // whole chain; results are identical to the serial overload).
  report.neutrality =
      neutrality_reports(chain, attribution, options.neutrality, workers);
  for (NeutralityReport& n : report.neutrality) {
    n.coverage = coverage_of_pool(n.pool);
    n.insufficient_data = report.has_quality && n.coverage < options.min_coverage;
  }
  return report;
}

void print_audit_report(const AuditReport& report, std::FILE* out) {
  std::fprintf(out, "=== chain audit: %s blocks, %s transactions (%s unattributed "
                    "blocks) ===\n",
               with_commas(report.blocks).c_str(), with_commas(report.txs).c_str(),
               with_commas(report.unidentified_blocks).c_str());
  std::fprintf(out, "norm-II adherence: mean PPE %.2f%% (std %.2f)\n",
               report.ppe.mean, report.ppe.stddev);
  if (report.has_quality) {
    std::fprintf(out,
                 "data quality: mean coverage %.1f%%, %s snapshot gap(s), "
                 "%s of %s blocks below %.0f%% coverage masked from norm stats\n",
                 report.mean_coverage * 100.0,
                 with_commas(report.snapshot_gaps).c_str(),
                 with_commas(report.masked_blocks).c_str(),
                 with_commas(report.blocks).c_str(),
                 report.options.min_coverage * 100.0);
  }
  std::fprintf(out, "\n");

  std::fprintf(out, "--- differential prioritization findings (%zu) ---\n",
               report.findings.size());
  for (const auto& f : report.findings) {
    std::fprintf(out,
                 "  %s: %s accelerates %s's txs  x=%llu y=%llu p=%s  "
                 "SPPE %.1f [%.1f, %.1f]%s\n",
                 f.collusion ? "COLLUSION" : "SELFISH", f.miner.c_str(),
                 f.tx_owner.c_str(), static_cast<unsigned long long>(f.test.x),
                 static_cast<unsigned long long>(f.test.y),
                 format_p_value(f.test.p_accelerate).c_str(), f.test.sppe,
                 f.sppe_ci.lo, f.sppe_ci.hi,
                 f.insufficient_data ? "  [INSUFFICIENT DATA]" : "");
  }
  if (report.findings.empty()) std::fprintf(out, "  (none)\n");

  if (!report.screens.empty()) {
    std::fprintf(out, "\n--- watched-address screens ---\n");
    for (const auto& s : report.screens) {
      std::fprintf(out, "  %s: %zu txs, %s\n", s.address.to_string().c_str(),
                   s.tx_count,
                   s.any_significant ? "DIFFERENTIAL TREATMENT DETECTED"
                                     : "no differential treatment");
    }
  }

  std::fprintf(out, "\n--- dark-fee suspicion (SPPE >= %.0f) ---\n",
               report.options.darkfee_sppe_threshold);
  for (const auto& d : report.darkfee) {
    if (d.flagged == 0) continue;
    std::fprintf(out, "  %-16s %6s of %9s txs flagged (%s)\n", d.pool.c_str(),
                 with_commas(d.flagged).c_str(), with_commas(d.txs).c_str(),
                 percent(d.txs ? static_cast<double>(d.flagged) /
                                     static_cast<double>(d.txs)
                               : 0.0, 3)
                     .c_str());
  }

  std::fprintf(out, "\n--- neutrality scorecard (worst first) ---\n");
  for (const auto& n : report.neutrality) {
    std::fprintf(out, "  %-16s score %5.1f  (PPE %.2f%%, boosts %s, self-p %s)%s\n",
                 n.pool.c_str(), n.score, n.mean_ppe,
                 percent(n.boosted_tx_rate, 2).c_str(),
                 format_p_value(n.self_dealing_p).c_str(),
                 n.insufficient_data ? "  [INSUFFICIENT DATA]" : "");
  }
}

}  // namespace cn::core

// The staged columnar audit pipeline (DESIGN.md §9). Every stage reads
// the shared immutable AuditContext — attribution, AuditDataset, tested
// pools, per-pool coverage — and writes only its own report section, in
// index order, so the report is byte-identical at every thread count and
// to the legacy object-graph oracle (audit_pipeline_legacy.cpp).
#include "core/audit_pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>
#include <utility>

#include "core/darkfee.hpp"
#include "core/ppe.hpp"
#include "core/report.hpp"
#include "core/sppe.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace cn::core {

const std::vector<std::string>& audit_stage_names() {
  static const std::vector<std::string> kNames = {
      "build",   "quality-mask", "norm-stats", "pool-tests",
      "screens", "darkfee",      "neutrality", "withholding"};
  return kNames;
}

bool AuditReport::stage_skipped(std::string_view name) const noexcept {
  for (const AuditStage& s : stages) {
    if (s.name == name) return !s.ran;
  }
  return false;
}

namespace {

bool stage_selected(const AuditOptions& options, std::string_view name) {
  if (options.stages.empty()) return true;
  for (const std::string& s : options.stages) {
    if (s == name) return true;
  }
  return false;
}

/// Per-stage telemetry handles, interned once per process. Every stage
/// gets a runs counter, a last-wall-time gauge, and a latency histogram
/// ("audit.stage.<name>.*"); the whole pipeline gets a runs counter and
/// a span named "audit.run_full_audit".
struct StageMetrics {
  obs::Counter runs;
  obs::Gauge last_seconds;
  obs::Histogram seconds;

  explicit StageMetrics(const std::string& stage)
      : runs("audit.stage." + stage + ".runs"),
        last_seconds("audit.stage." + stage + ".last_seconds"),
        seconds("audit.stage." + stage + ".seconds",
                obs::latency_seconds_buckets()) {}
};

StageMetrics& stage_metrics(std::size_t stage_index) {
  static std::vector<StageMetrics>* all = [] {
    auto* v = new std::vector<StageMetrics>();
    v->reserve(audit_stage_names().size());
    for (const std::string& name : audit_stage_names()) v->emplace_back(name);
    return v;
  }();
  return (*all)[stage_index];
}

AuditReport run_full_audit_columnar(const btc::Chain& chain,
                                    const btc::CoinbaseTagRegistry& registry,
                                    const DataQualityReport* quality,
                                    const AuditOptions& options) {
  static obs::Counter audit_runs("audit.runs");
  const obs::Span run_span("audit.run_full_audit");
  audit_runs.add();

  AuditReport report;
  report.options = options;
  report.blocks = chain.size();
  report.txs = chain.total_tx_count();

  util::ThreadPool workers(options.threads);
  AuditContext ctx{chain, registry, quality, {}, {}, {}, {}};

  // Runs one named stage (when selected) and records its wall time.
  // "build" and "quality-mask" pass always=true: every later stage reads
  // their output, and the report header depends on them. Stages are
  // invoked in audit_stage_names() order, so report.stages.size() is the
  // index into the interned per-stage metric handles.
  const auto stage = [&](const char* name, bool always, auto&& body) {
    AuditStage s;
    s.name = name;
    s.ran = always || stage_selected(options, name);
    if (s.ran) {
      StageMetrics& m = stage_metrics(report.stages.size());
      const obs::Span span(std::string("audit.stage.") + name);
      const auto t0 = std::chrono::steady_clock::now();
      body();
      s.seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      m.runs.add();
      m.last_seconds.set(s.seconds);
      m.seconds.observe(s.seconds);
    }
    report.stages.push_back(std::move(s));
  };

  // build: attribution, the columnar dataset, and the tested-pool list.
  stage("build", true, [&] {
    ctx.attribution = PoolAttribution(chain, registry);
    if (options.prebuilt_dataset != nullptr) {
      ctx.dataset = *options.prebuilt_dataset;
    } else {
      ctx.dataset = AuditDataset::build(chain, ctx.attribution, workers,
                                        options.interned_addresses);
    }
    for (const PoolId id : ctx.attribution.pool_ids_by_blocks()) {
      if (ctx.attribution.hash_share(id) >= options.min_share) {
        ctx.pools.push_back(id);
      }
    }
    report.unidentified_blocks = ctx.attribution.unidentified_blocks();
  });
  const AuditDataset& ds = ctx.dataset;

  // quality-mask: which blocks the audit may trust, and how much
  // observed data each pool's statistics rest on. Derived
  // deterministically before the fan-out.
  stage("quality-mask", true, [&] {
    report.has_quality = quality != nullptr;
    ctx.pool_coverage.assign(ctx.attribution.pool_count(), 1.0);
    if (quality == nullptr) return;
    report.mean_coverage = quality->mean_coverage;
    report.snapshot_gaps = static_cast<std::uint64_t>(quality->gaps.size());
    std::vector<double> sum(ctx.attribution.pool_count(), 0.0);
    std::vector<std::uint64_t> n(ctx.attribution.pool_count(), 0);
    const std::span<const std::uint64_t> heights = ds.block_heights();
    const std::span<const PoolId> owners = ds.block_pool();
    for (std::size_t b = 0; b < ds.block_count(); ++b) {
      const double cov = quality->coverage_at(heights[b]);
      if (cov < options.min_coverage) {
        report.low_coverage_heights.push_back(heights[b]);
      }
      if (owners[b] != kNoPoolId) {
        sum[owners[b]] += cov;
        ++n[owners[b]];
      }
    }
    report.masked_blocks =
        static_cast<std::uint64_t>(report.low_coverage_heights.size());
    for (PoolId p = 0; p < ctx.pool_coverage.size(); ++p) {
      if (n[p] > 0) ctx.pool_coverage[p] = sum[p] / static_cast<double>(n[p]);
    }
  });
  const auto coverage_of_pool = [&](PoolId id) {
    return id < ctx.pool_coverage.size() ? ctx.pool_coverage[id] : 1.0;
  };

  // norm-stats: norm-II adherence over trusted blocks, from the cached
  // per-block PPE column.
  stage("norm-stats", false, [&] {
    std::vector<double> ppe;
    if (quality == nullptr) {
      ppe = chain_ppe(ds);
    } else {
      const std::span<const std::uint64_t> heights = ds.block_heights();
      const std::span<const double> block_ppe = ds.block_ppe();
      for (std::size_t b = 0; b < ds.block_count(); ++b) {
        if (quality->coverage_at(heights[b]) < options.min_coverage) continue;
        if (!std::isnan(block_ppe[b])) ppe.push_back(block_ppe[b]);
      }
    }
    report.ppe = stats::summarize(ppe);
  });

  // pool-tests: §5.2 cross-pool differential prioritization of
  // self-interest txs. The per-pool tx lists were precomputed by the
  // build stage in one chain scan (the legacy path re-scanned the chain
  // once per pool).
  stage("pool-tests", false, [&] {
    const std::vector<PoolId>& pools = ctx.pools;
    // Candidate (owner, miner) pairs in the serial nested-loop order.
    std::vector<std::pair<std::size_t, std::size_t>> candidates;
    candidates.reserve(pools.size() * pools.size());
    for (std::size_t o = 0; o < pools.size(); ++o) {
      if (ds.self_interest_txs(pools[o]).size() < 10) continue;
      for (std::size_t m = 0; m < pools.size(); ++m) candidates.emplace_back(o, m);
    }
    auto candidate_findings = workers.parallel_map(
        candidates.size(),
        [&](std::size_t k) -> std::optional<AccelerationFinding> {
          const auto [o, m] = candidates[k];
          const std::span<const TxIdx> txs = ds.self_interest_txs(pools[o]);
          const auto test =
              test_differential_prioritization(ds, pools[m], txs);
          if (test.p_accelerate >= options.alpha || test.sppe <= 25.0) {
            return std::nullopt;
          }

          AccelerationFinding finding;
          finding.tx_owner = ds.pool_name(pools[o]);
          finding.miner = ds.pool_name(pools[m]);
          finding.collusion = pools[o] != pools[m];
          finding.test = test;
          if (options.bootstrap_resamples > 0) {
            const auto values = sppe_values(ds, txs, pools[m]);
            if (!values.empty()) {
              finding.sppe_ci = stats::bootstrap_mean_ci(
                  values, 0.95, options.bootstrap_resamples,
                  stable_hash64(finding.tx_owner + "/" + finding.miner));
            }
          }
          return finding;
        });
    for (std::size_t k = 0; k < candidate_findings.size(); ++k) {
      auto& finding = candidate_findings[k];
      if (!finding.has_value()) continue;
      finding->coverage = coverage_of_pool(pools[candidates[k].second]);
      finding->insufficient_data =
          report.has_quality && finding->coverage < options.min_coverage;
      report.findings.push_back(std::move(*finding));
    }
    std::sort(report.findings.begin(), report.findings.end(),
              [](const AccelerationFinding& a, const AccelerationFinding& b) {
                if (a.test.p_accelerate != b.test.p_accelerate)
                  return a.test.p_accelerate < b.test.p_accelerate;
                return a.test.sppe > b.test.sppe;
              });
  });

  // screens: §5.3 watched-address screens (one task per address x pool).
  stage("screens", false, [&] {
    const std::vector<PoolId>& pools = ctx.pools;
    const auto watched_refs = workers.parallel_map(
        options.watch_addresses.size(), [&](std::size_t a) {
          return ds.txs_paying_to(options.watch_addresses[a]);
        });
    std::vector<PrioTestResult> screen_tests;
    if (!pools.empty()) {
      screen_tests = workers.parallel_map(
          options.watch_addresses.size() * pools.size(), [&](std::size_t k) {
            const std::size_t a = k / pools.size();
            const std::size_t p = k % pools.size();
            return test_differential_prioritization(ds, pools[p],
                                                    watched_refs[a]);
          });
    }
    for (std::size_t a = 0; a < options.watch_addresses.size(); ++a) {
      WatchedAddressScreen screen;
      screen.address = options.watch_addresses[a];
      screen.tx_count = watched_refs[a].size();
      for (std::size_t p = 0; p < pools.size(); ++p) {
        auto test = std::move(screen_tests[a * pools.size() + p]);
        screen.any_significant = screen.any_significant ||
                                 test.p_accelerate < options.alpha ||
                                 test.p_decelerate < options.alpha;
        screen.per_pool.push_back(std::move(test));
      }
      report.screens.push_back(std::move(screen));
    }
  });

  // darkfee: Table 4 detector (counts only; validation needs the
  // service API). Per-pool tx totals and the SPPE column are cached.
  stage("darkfee", false, [&] {
    const std::vector<PoolId>& pools = ctx.pools;
    report.darkfee = workers.parallel_map(pools.size(), [&](std::size_t p) {
      DarkFeeSuspicion suspicion;
      suspicion.pool = ds.pool_name(pools[p]);
      suspicion.txs = ds.pool_tx_count(pools[p]);
      suspicion.flagged =
          count_accelerated(ds, pools[p], options.darkfee_sppe_threshold);
      return suspicion;
    });
    std::sort(report.darkfee.begin(), report.darkfee.end(),
              [](const DarkFeeSuspicion& a, const DarkFeeSuspicion& b) {
                const double ra = a.txs ? static_cast<double>(a.flagged) / a.txs : 0;
                const double rb = b.txs ? static_cast<double>(b.flagged) / b.txs : 0;
                if (ra != rb) return ra > rb;
                return a.pool < b.pool;
              });
  });

  // neutrality: §6.1 scorecard, fanned out per pool over the cached
  // columns.
  stage("neutrality", false, [&] {
    report.neutrality = neutrality_reports(ds, options.neutrality, workers);
    for (NeutralityReport& n : report.neutrality) {
      const auto id = ctx.attribution.id_of(n.pool);
      n.coverage = id.has_value() ? coverage_of_pool(*id) : 1.0;
      n.insufficient_data =
          report.has_quality && n.coverage < options.min_coverage;
    }
  });

  // withholding: block-vs-mempool overlap detector. Needs the observer's
  // first-seen log; without it the stage (and its report section) is
  // absent, keeping historical reports byte-identical.
  report.has_first_seen = options.first_seen != nullptr;
  stage("withholding", false, [&] {
    if (options.first_seen == nullptr) return;
    report.withholding = withholding_reports(chain, ctx.attribution,
                                             *options.first_seen,
                                             options.withholding);
  });

  return report;
}

}  // namespace

AuditReport run_full_audit(const btc::Chain& chain,
                           const btc::CoinbaseTagRegistry& registry,
                           const AuditOptions& options) {
  return run_full_audit(chain, registry, nullptr, options);
}

AuditReport run_full_audit(const btc::Chain& chain,
                           const btc::CoinbaseTagRegistry& registry,
                           const DataQualityReport* quality,
                           const AuditOptions& options) {
  if (options.engine == AuditEngine::kLegacy) {
    return detail::run_full_audit_legacy(chain, registry, quality, options);
  }
  return run_full_audit_columnar(chain, registry, quality, options);
}

void print_audit_report(const AuditReport& report, std::FILE* out,
                        bool with_timings) {
  std::fprintf(out, "=== chain audit: %s blocks, %s transactions (%s unattributed "
                    "blocks) ===\n",
               with_commas(report.blocks).c_str(), with_commas(report.txs).c_str(),
               with_commas(report.unidentified_blocks).c_str());
  if (report.stage_skipped("norm-stats")) {
    std::fprintf(out, "norm-II adherence: [SKIPPED]\n");
  } else {
    std::fprintf(out, "norm-II adherence: mean PPE %.2f%% (std %.2f)\n",
                 report.ppe.mean, report.ppe.stddev);
  }
  if (report.has_quality) {
    std::fprintf(out,
                 "data quality: mean coverage %.1f%%, %s snapshot gap(s), "
                 "%s of %s blocks below %.0f%% coverage masked from norm stats\n",
                 report.mean_coverage * 100.0,
                 with_commas(report.snapshot_gaps).c_str(),
                 with_commas(report.masked_blocks).c_str(),
                 with_commas(report.blocks).c_str(),
                 report.options.min_coverage * 100.0);
  }
  std::fprintf(out, "\n");

  std::fprintf(out, "--- differential prioritization findings (%zu) ---\n",
               report.findings.size());
  if (report.stage_skipped("pool-tests")) {
    std::fprintf(out, "  [SKIPPED]\n");
  } else {
    for (const auto& f : report.findings) {
      std::fprintf(out,
                   "  %s: %s accelerates %s's txs  x=%llu y=%llu p=%s  "
                   "SPPE %.1f [%.1f, %.1f]%s\n",
                   f.collusion ? "COLLUSION" : "SELFISH", f.miner.c_str(),
                   f.tx_owner.c_str(), static_cast<unsigned long long>(f.test.x),
                   static_cast<unsigned long long>(f.test.y),
                   format_p_value(f.test.p_accelerate).c_str(), f.test.sppe,
                   f.sppe_ci.lo, f.sppe_ci.hi,
                   f.insufficient_data ? "  [INSUFFICIENT DATA]" : "");
    }
    if (report.findings.empty()) std::fprintf(out, "  (none)\n");
  }

  if (report.stage_skipped("screens")) {
    std::fprintf(out, "\n--- watched-address screens ---\n  [SKIPPED]\n");
  } else if (!report.screens.empty()) {
    std::fprintf(out, "\n--- watched-address screens ---\n");
    for (const auto& s : report.screens) {
      std::fprintf(out, "  %s: %zu txs, %s\n", s.address.to_string().c_str(),
                   s.tx_count,
                   s.any_significant ? "DIFFERENTIAL TREATMENT DETECTED"
                                     : "no differential treatment");
    }
  }

  std::fprintf(out, "\n--- dark-fee suspicion (SPPE >= %.0f) ---\n",
               report.options.darkfee_sppe_threshold);
  if (report.stage_skipped("darkfee")) {
    std::fprintf(out, "  [SKIPPED]\n");
  } else {
    for (const auto& d : report.darkfee) {
      if (d.flagged == 0) continue;
      std::fprintf(out, "  %-16s %6s of %9s txs flagged (%s)\n", d.pool.c_str(),
                   with_commas(d.flagged).c_str(), with_commas(d.txs).c_str(),
                   percent(d.txs ? static_cast<double>(d.flagged) /
                                       static_cast<double>(d.txs)
                                 : 0.0, 3)
                       .c_str());
    }
  }

  std::fprintf(out, "\n--- neutrality scorecard (worst first) ---\n");
  if (report.stage_skipped("neutrality")) {
    std::fprintf(out, "  [SKIPPED]\n");
  } else {
    for (const auto& n : report.neutrality) {
      std::fprintf(out, "  %-16s score %5.1f  (PPE %.2f%%, boosts %s, self-p %s)%s\n",
                   n.pool.c_str(), n.score, n.mean_ppe,
                   percent(n.boosted_tx_rate, 2).c_str(),
                   format_p_value(n.self_dealing_p).c_str(),
                   n.insufficient_data ? "  [INSUFFICIENT DATA]" : "");
    }
  }

  // Rendered only when a first-seen log was supplied, so data sets
  // without one keep their historical report bytes.
  if (report.has_first_seen) {
    std::fprintf(out, "\n--- block withholding (missing-mempool overlap) ---\n");
    if (report.stage_skipped("withholding")) {
      std::fprintf(out, "  [SKIPPED]\n");
    } else {
      for (const auto& w : report.withholding) {
        std::fprintf(out,
                     "  %-16s %6s of %9s blocks flagged (%s, base %s) p=%s\n",
                     w.pool.c_str(), with_commas(w.flagged).c_str(),
                     with_commas(w.blocks).c_str(),
                     percent(w.flagged_rate, 2).c_str(),
                     percent(w.base_rate, 2).c_str(),
                     format_p_value(w.p_value).c_str());
      }
      if (report.withholding.empty()) std::fprintf(out, "  (none)\n");
    }
  }

  if (with_timings && !report.stages.empty()) {
    double total = 0.0;
    std::fprintf(out, "\n--- stage timings ---\n");
    for (const AuditStage& s : report.stages) {
      if (s.ran) {
        std::fprintf(out, "  %-14s %9.3f s\n", s.name.c_str(), s.seconds);
        total += s.seconds;
      } else {
        std::fprintf(out, "  %-14s  [SKIPPED]\n", s.name.c_str());
      }
    }
    std::fprintf(out, "  %-14s %9.3f s\n", "total", total);
  }
}

}  // namespace cn::core

// Signed Position Prediction Error (paper §5.1, §5.4.2).
//
// Per-transaction: SPPE = predicted percentile rank - observed percentile
// rank, where the prediction orders ALL of the block's transactions by
// fee-rate. A large positive SPPE means the transaction sits near the top
// of the block although its public fee-rate says it belongs near the
// bottom — the signature of off-norm prioritization (selfish interest,
// collusion, or a dark acceleration fee).
#pragma once

#include <span>
#include <vector>

#include "btc/block.hpp"
#include "btc/chain.hpp"
#include "core/audit_dataset.hpp"
#include "core/wallet_inference.hpp"

namespace cn::core {

/// SPPE (in percentile-rank points, range [-100, 100]) for every position
/// of @p block, indexed by observed position. Empty for blocks with fewer
/// than 2 transactions.
std::vector<double> block_sppe(const btc::Block& block);

/// SPPE of a single transaction (by observed position). Requires a block
/// with at least 2 transactions.
double tx_sppe(const btc::Block& block, std::size_t position);

/// Mean SPPE of a set of committed transactions, optionally restricted to
/// blocks attributed to @p pool (empty pool string = no restriction).
/// Returns 0 with *count = 0 when no transaction qualifies.
double mean_sppe(const btc::Chain& chain, const std::vector<TxRef>& txs,
                 const PoolAttribution& attribution, const std::string& pool,
                 std::size_t* count = nullptr);

/// Per-transaction SPPE values for the same selection (order follows
/// @p txs, entries without a defined SPPE skipped). Useful for
/// uncertainty estimates (bootstrap) on top of the mean.
std::vector<double> sppe_values(const btc::Chain& chain,
                                const std::vector<TxRef>& txs,
                                const PoolAttribution& attribution,
                                const std::string& pool);

/// Columnar variants: gather the dataset's cached per-tx SPPE column for
/// a TxIdx selection, optionally restricted to blocks of @p pool
/// (kNoPoolId = no restriction). Values and order are identical to the
/// object-graph overloads on the same selection — NaN entries (1-tx
/// blocks) are skipped exactly where the legacy path skipped them.
std::vector<double> sppe_values(const AuditDataset& dataset,
                                std::span<const TxIdx> txs, PoolId pool);

double mean_sppe(const AuditDataset& dataset, std::span<const TxIdx> txs,
                 PoolId pool, std::size_t* count = nullptr);

}  // namespace cn::core

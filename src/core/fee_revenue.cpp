#include "core/fee_revenue.hpp"

#include "btc/rewards.hpp"
#include "util/assert.hpp"

namespace cn::core {

namespace {

double fee_share_percent(const btc::Block& block, double subsidy_scale) {
  const double fees = static_cast<double>(block.total_fees().value);
  const double subsidy =
      static_cast<double>(btc::block_subsidy(block.height()).value) * subsidy_scale;
  const double total = fees + subsidy;
  if (total <= 0.0) return 0.0;
  return fees / total * 100.0;
}

}  // namespace

std::vector<double> per_block_fee_share_percent(const btc::Chain& chain,
                                                double subsidy_scale) {
  CN_ASSERT(subsidy_scale > 0.0);
  std::vector<double> out;
  out.reserve(chain.size());
  for (const btc::Block& block : chain.blocks()) {
    out.push_back(fee_share_percent(block, subsidy_scale));
  }
  return out;
}

stats::Summary fee_share_summary(const btc::Chain& chain, double subsidy_scale) {
  const std::vector<double> shares =
      per_block_fee_share_percent(chain, subsidy_scale);
  return stats::summarize(shares);
}

stats::Summary fee_share_summary(const btc::Chain& chain,
                                 std::uint64_t first_height,
                                 std::uint64_t last_height,
                                 double subsidy_scale) {
  CN_ASSERT(subsidy_scale > 0.0);
  std::vector<double> shares;
  for (const btc::Block& block : chain.blocks()) {
    if (block.height() >= first_height && block.height() <= last_height) {
      shares.push_back(fee_share_percent(block, subsidy_scale));
    }
  }
  return stats::summarize(shares);
}

}  // namespace cn::core

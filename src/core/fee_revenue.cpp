#include "core/fee_revenue.hpp"

#include "btc/rewards.hpp"
#include "core/audit_dataset.hpp"
#include "util/assert.hpp"

namespace cn::core {

namespace {

double fee_share_percent(const btc::Block& block, double subsidy_scale) {
  const double fees = static_cast<double>(block.total_fees().value);
  const double subsidy =
      static_cast<double>(btc::block_subsidy(block.height()).value) * subsidy_scale;
  const double total = fees + subsidy;
  if (total <= 0.0) return 0.0;
  return fees / total * 100.0;
}

}  // namespace

std::vector<double> per_block_fee_share_percent(const btc::Chain& chain,
                                                double subsidy_scale) {
  CN_ASSERT(subsidy_scale > 0.0);
  std::vector<double> out;
  out.reserve(chain.size());
  for (const btc::Block& block : chain.blocks()) {
    out.push_back(fee_share_percent(block, subsidy_scale));
  }
  return out;
}

std::vector<double> per_block_fee_share_percent(const AuditDataset& dataset,
                                                double subsidy_scale) {
  CN_ASSERT(subsidy_scale > 0.0);
  std::vector<double> out;
  out.reserve(dataset.block_count());
  const std::span<const std::int64_t> fees = dataset.block_fees();
  const std::span<const std::uint64_t> heights = dataset.block_heights();
  for (std::size_t b = 0; b < dataset.block_count(); ++b) {
    const double fee = static_cast<double>(fees[b]);
    const double subsidy =
        static_cast<double>(btc::block_subsidy(heights[b]).value) * subsidy_scale;
    const double total = fee + subsidy;
    out.push_back(total <= 0.0 ? 0.0 : fee / total * 100.0);
  }
  return out;
}

stats::Summary fee_share_summary(const btc::Chain& chain, double subsidy_scale) {
  const std::vector<double> shares =
      per_block_fee_share_percent(chain, subsidy_scale);
  return stats::summarize(shares);
}

stats::Summary fee_share_summary(const AuditDataset& dataset, double subsidy_scale) {
  return stats::summarize(per_block_fee_share_percent(dataset, subsidy_scale));
}

stats::Summary fee_share_summary(const btc::Chain& chain,
                                 std::uint64_t first_height,
                                 std::uint64_t last_height,
                                 double subsidy_scale) {
  CN_ASSERT(subsidy_scale > 0.0);
  std::vector<double> shares;
  for (const btc::Block& block : chain.blocks()) {
    if (block.height() >= first_height && block.height() <= last_height) {
      shares.push_back(fee_share_percent(block, subsidy_scale));
    }
  }
  return stats::summarize(shares);
}

}  // namespace cn::core

// Block-withholding (selfish-mining) detector.
//
// A withholding pool publishes blocks whose templates were frozen some
// time before publication, so the block is missing transactions every
// honest observer had long since seen. The Bitcoin-SV functional test
// (`-detectselfishmining`) flags exactly this signature: the block's
// timestamp lags its arrival AND a large fraction of the observer's
// mempool is absent from the block. We reproduce the mempool-overlap
// half against the observer's first-seen log: for each block, the
// candidate set is every transaction the observer saw at least
// `min_lead_s` (default 10 s, the BSV time-difference threshold) before
// the block, still unconfirmed, and paying at least the block's own
// fee-rate floor; a block missing `missing_threshold` (default 40%, the
// BSV overlap threshold) of its candidates is flagged. Per-pool flag
// rates are then tested against the network base rate with an exact
// binomial tail, mirroring the paper's §5 methodology.
//
// Inputs are public data only (the chain plus an observer's first-seen
// log), never simulator ground truth, so the detector runs unchanged on
// imported data sets.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "btc/chain.hpp"
#include "core/wallet_inference.hpp"
#include "util/time.hpp"

namespace cn::core {

struct WithholdingOptions {
  /// A candidate must have been seen at least this long before the
  /// block (the BSV time-difference threshold).
  double min_lead_s = 10.0;
  /// Flag a block missing at least this fraction of its candidates
  /// (the BSV missing-mempool-overlap threshold).
  double missing_threshold = 0.4;
  /// Blocks with fewer candidates than this are not judged (too little
  /// mempool context to call an overlap).
  std::size_t min_candidates = 20;
  /// Candidates must pay at least this quantile of the block's included
  /// fee rates — transactions below the block's own floor were
  /// plausibly skipped for fee reasons, not withheld.
  double fee_floor_quantile = 0.10;
  /// Blocks at or above this fraction of the observed capacity are not
  /// judged: a full block excludes transactions legitimately.
  double full_block_fraction = 0.95;
};

/// Per-pool withholding suspicion (worst first after sorting).
struct WithholdingReport {
  std::string pool;
  std::uint64_t blocks = 0;   ///< non-empty attributed blocks judged
  std::uint64_t flagged = 0;  ///< blocks over the missing threshold
  double flagged_rate = 0.0;  ///< flagged / blocks
  double base_rate = 0.0;     ///< network-wide flagged fraction
  /// Exact binomial tail Pr[B(blocks, base_rate) >= flagged]: how
  /// surprising this pool's flag count is under the network base rate.
  double p_value = 1.0;
};

/// Runs the detector over every attributed pool. @p first_seen maps each
/// transaction to the observer's first-seen time (io::FirstSeenMap's
/// underlying type; core stays io-free). Deterministic: pools are
/// reported in attribution order, then sorted worst first (p ascending,
/// rate descending, name).
std::vector<WithholdingReport> withholding_reports(
    const btc::Chain& chain, const PoolAttribution& attribution,
    const std::unordered_map<btc::Txid, SimTime>& first_seen,
    const WithholdingOptions& options = {});

}  // namespace cn::core

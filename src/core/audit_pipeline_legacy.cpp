// The pre-columnar audit monolith, kept verbatim as the differential
// oracle behind AuditEngine::kLegacy. It walks btc::Chain object graphs
// and keys accumulators on pool-name strings — exactly what the staged
// columnar pipeline (audit_pipeline.cpp) replaced — so the byte-identity
// suite (tests/core/test_audit_differential.cpp) can prove the refactor
// changed the data layout and nothing else.
#include <algorithm>
#include <optional>
#include <unordered_map>
#include <utility>

#include "core/audit_pipeline.hpp"
#include "core/darkfee.hpp"
#include "core/ppe.hpp"
#include "core/sppe.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace cn::core::detail {

AuditReport run_full_audit_legacy(const btc::Chain& chain,
                                  const btc::CoinbaseTagRegistry& registry,
                                  const DataQualityReport* quality,
                                  const AuditOptions& options) {
  AuditReport report;
  report.options = options;
  report.blocks = chain.size();
  report.txs = chain.total_tx_count();

  const PoolAttribution attribution(chain, registry);
  report.unidentified_blocks = attribution.unidentified_blocks();

  // Coverage accounting: which blocks the audit may trust, and how much
  // observed data each pool's statistics rest on. All of it is derived
  // deterministically before the fan-out, so threading stays
  // byte-identical.
  report.has_quality = quality != nullptr;
  std::unordered_map<std::string, double> pool_coverage;
  if (quality != nullptr) {
    report.mean_coverage = quality->mean_coverage;
    report.snapshot_gaps = static_cast<std::uint64_t>(quality->gaps.size());
    std::unordered_map<std::string, std::pair<double, std::uint64_t>> acc;
    for (const btc::Block& block : chain.blocks()) {
      const double cov = quality->coverage_at(block.height());
      if (cov < options.min_coverage) {
        report.low_coverage_heights.push_back(block.height());
      }
      if (const auto owner = attribution.pool_of(block.height())) {
        auto& [sum, n] = acc[*owner];
        sum += cov;
        ++n;
      }
    }
    report.masked_blocks =
        static_cast<std::uint64_t>(report.low_coverage_heights.size());
    for (const auto& [pool, sum_n] : acc) {
      pool_coverage[pool] = sum_n.second > 0
                                ? sum_n.first / static_cast<double>(sum_n.second)
                                : 1.0;
    }
  }
  const auto coverage_of_pool = [&](const std::string& pool) {
    const auto it = pool_coverage.find(pool);
    return it != pool_coverage.end() ? it->second : 1.0;
  };

  // Norm II adherence, over trusted blocks only when coverage is graded.
  std::vector<double> ppe;
  if (quality == nullptr) {
    ppe = chain_ppe(chain);
  } else {
    for (const btc::Block& block : chain.blocks()) {
      if (quality->coverage_at(block.height()) < options.min_coverage) continue;
      if (const auto v = block_ppe(block)) ppe.push_back(*v);
    }
  }
  report.ppe = stats::summarize(ppe);

  // Large pools only.
  std::vector<std::string> pools;
  for (const auto& pool : attribution.pools_by_blocks()) {
    if (attribution.hash_share(pool) >= options.min_share) pools.push_back(pool);
  }

  // Fan-out pool for every independent audit stage below. Each task's
  // inputs and RNG seed depend only on its index, and every merge walks
  // the results in index order, so the report is byte-identical whatever
  // the lane count (threads == 1 runs everything inline).
  util::ThreadPool workers(options.threads);

  // §5.2: cross-pool differential prioritization of self-interest txs.
  const auto owner_txs = workers.parallel_map(pools.size(), [&](std::size_t i) {
    return self_interest_txs(chain, attribution, pools[i]);
  });
  // Candidate (owner, miner) pairs in the serial nested-loop order.
  std::vector<std::pair<std::size_t, std::size_t>> candidates;
  candidates.reserve(pools.size() * pools.size());
  for (std::size_t o = 0; o < pools.size(); ++o) {
    if (owner_txs[o].size() < 10) continue;
    for (std::size_t m = 0; m < pools.size(); ++m) candidates.emplace_back(o, m);
  }
  auto candidate_findings = workers.parallel_map(
      candidates.size(),
      [&](std::size_t k) -> std::optional<AccelerationFinding> {
        const auto [o, m] = candidates[k];
        const std::string& owner = pools[o];
        const std::string& miner = pools[m];
        const auto& txs = owner_txs[o];
        const auto test =
            test_differential_prioritization(chain, attribution, miner, txs);
        if (test.p_accelerate >= options.alpha || test.sppe <= 25.0) {
          return std::nullopt;
        }

        AccelerationFinding finding;
        finding.tx_owner = owner;
        finding.miner = miner;
        finding.collusion = owner != miner;
        finding.test = test;
        if (options.bootstrap_resamples > 0) {
          const auto values = sppe_values(chain, txs, attribution, miner);
          if (!values.empty()) {
            finding.sppe_ci = stats::bootstrap_mean_ci(
                values, 0.95, options.bootstrap_resamples,
                stable_hash64(owner + "/" + miner));
          }
        }
        return finding;
      });
  for (auto& finding : candidate_findings) {
    if (finding.has_value()) {
      finding->coverage = coverage_of_pool(finding->miner);
      finding->insufficient_data =
          report.has_quality && finding->coverage < options.min_coverage;
      report.findings.push_back(std::move(*finding));
    }
  }
  std::sort(report.findings.begin(), report.findings.end(),
            [](const AccelerationFinding& a, const AccelerationFinding& b) {
              if (a.test.p_accelerate != b.test.p_accelerate)
                return a.test.p_accelerate < b.test.p_accelerate;
              return a.test.sppe > b.test.sppe;
            });

  // §5.3: watched-address screens (one task per address x pool).
  const auto watched_refs = workers.parallel_map(
      options.watch_addresses.size(), [&](std::size_t a) {
        return txs_paying_to(chain, options.watch_addresses[a]);
      });
  std::vector<PrioTestResult> screen_tests;
  if (!pools.empty()) {
    screen_tests = workers.parallel_map(
        options.watch_addresses.size() * pools.size(), [&](std::size_t k) {
          const std::size_t a = k / pools.size();
          const std::size_t p = k % pools.size();
          return test_differential_prioritization(chain, attribution, pools[p],
                                                  watched_refs[a]);
        });
  }
  for (std::size_t a = 0; a < options.watch_addresses.size(); ++a) {
    WatchedAddressScreen screen;
    screen.address = options.watch_addresses[a];
    screen.tx_count = watched_refs[a].size();
    for (std::size_t p = 0; p < pools.size(); ++p) {
      auto test = std::move(screen_tests[a * pools.size() + p]);
      screen.any_significant = screen.any_significant ||
                               test.p_accelerate < options.alpha ||
                               test.p_decelerate < options.alpha;
      screen.per_pool.push_back(std::move(test));
    }
    report.screens.push_back(std::move(screen));
  }

  // Table 4 detector (counts only; validation needs the service API).
  report.darkfee = workers.parallel_map(pools.size(), [&](std::size_t p) {
    DarkFeeSuspicion suspicion;
    suspicion.pool = pools[p];
    for (const btc::Block& block : chain.blocks()) {
      const auto owner = attribution.pool_of(block.height());
      if (owner.has_value() && *owner == pools[p]) suspicion.txs += block.tx_count();
    }
    suspicion.flagged = detect_accelerated(chain, attribution, pools[p],
                                           options.darkfee_sppe_threshold)
                            .size();
    return suspicion;
  });
  std::sort(report.darkfee.begin(), report.darkfee.end(),
            [](const DarkFeeSuspicion& a, const DarkFeeSuspicion& b) {
              const double ra = a.txs ? static_cast<double>(a.flagged) / a.txs : 0;
              const double rb = b.txs ? static_cast<double>(b.flagged) / b.txs : 0;
              if (ra != rb) return ra > rb;
              return a.pool < b.pool;
            });

  // §6.1 scorecard, fanned out per pool (each pool's report scans the
  // whole chain; results are identical to the serial overload).
  report.neutrality =
      neutrality_reports(chain, attribution, options.neutrality, workers);
  for (NeutralityReport& n : report.neutrality) {
    n.coverage = coverage_of_pool(n.pool);
    n.insufficient_data = report.has_quality && n.coverage < options.min_coverage;
  }

  // Block-withholding detector — shared verbatim with the columnar
  // engine (core/withholding.hpp), so the byte-identity differential
  // holds with or without a first-seen log.
  report.has_first_seen = options.first_seen != nullptr;
  if (options.first_seen != nullptr) {
    report.withholding = withholding_reports(chain, attribution,
                                             *options.first_seen,
                                             options.withholding);
  }
  return report;
}

}  // namespace cn::core::detail

// Block attribution and pool-wallet inference (§5.2, Figure 8).
//
// The audit never consults the simulator's ground truth: exactly as the
// paper does, it (1) attributes each block to a pool by its coinbase
// marker, (2) collects the reward wallets each pool names in its Coinbase
// transactions, and (3) flags as "self-interest" every committed
// transaction spending from or paying to one of those wallets.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "btc/chain.hpp"
#include "btc/coinbase_tags.hpp"

namespace cn::core {

/// A committed transaction reference.
struct TxRef {
  std::uint64_t block_height = 0;
  std::size_t position = 0;
};

class PoolAttribution {
 public:
  PoolAttribution() = default;

  /// Scans the chain once, attributing blocks and collecting wallets.
  PoolAttribution(const btc::Chain& chain, const btc::CoinbaseTagRegistry& registry);

  /// Pool that mined the block at @p height (nullopt when unidentified).
  std::optional<std::string> pool_of(std::uint64_t height) const;

  /// Blocks mined per pool.
  const std::unordered_map<std::string, std::uint64_t>& block_counts() const noexcept {
    return counts_;
  }
  std::uint64_t blocks_of(const std::string& pool) const noexcept;
  std::uint64_t unidentified_blocks() const noexcept { return unidentified_; }
  std::uint64_t total_blocks() const noexcept { return total_blocks_; }

  /// Normalized hash rate estimate: blocks_of(pool) / total_blocks.
  double hash_share(const std::string& pool) const noexcept;

  /// Reward wallets observed in the pool's coinbases.
  const std::unordered_set<btc::Address>& wallets_of(const std::string& pool) const;

  /// Pool names ordered by descending block count.
  std::vector<std::string> pools_by_blocks() const;

 private:
  std::unordered_map<std::uint64_t, std::string> by_height_;
  std::unordered_map<std::string, std::uint64_t> counts_;
  std::unordered_map<std::string, std::unordered_set<btc::Address>> wallets_;
  std::uint64_t unidentified_ = 0;
  std::uint64_t total_blocks_ = 0;
};

/// All committed transactions that involve (spend from or pay to) any of
/// @p pool's inferred wallets. Coinbase rewards are not transactions in
/// the block body and are naturally excluded.
std::vector<TxRef> self_interest_txs(const btc::Chain& chain,
                                     const PoolAttribution& attribution,
                                     const std::string& pool);

/// Committed transactions paying to @p address (the scam-wallet filter).
std::vector<TxRef> txs_paying_to(const btc::Chain& chain, btc::Address address);

}  // namespace cn::core

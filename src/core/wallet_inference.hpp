// Block attribution and pool-wallet inference (§5.2, Figure 8).
//
// The audit never consults the simulator's ground truth: exactly as the
// paper does, it (1) attributes each block to a pool by its coinbase
// marker, (2) collects the reward wallets each pool names in its Coinbase
// transactions, and (3) flags as "self-interest" every committed
// transaction spending from or paying to one of those wallets.
//
// Pool names are interned on first sight: every pool gets a dense PoolId
// so downstream accumulators can be plain vectors indexed by id instead
// of string-keyed hash maps. The string API below is a thin facade over
// the interned representation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "btc/chain.hpp"
#include "btc/coinbase_tags.hpp"

namespace cn::core {

/// A committed transaction reference.
struct TxRef {
  std::uint64_t block_height = 0;
  std::size_t position = 0;
};

/// Dense interned pool id, assigned in block-attribution order.
using PoolId = std::uint32_t;
inline constexpr PoolId kNoPoolId = ~PoolId{0};

class PoolAttribution {
 public:
  PoolAttribution() = default;

  /// Scans the chain once, attributing blocks and collecting wallets.
  PoolAttribution(const btc::Chain& chain, const btc::CoinbaseTagRegistry& registry);

  // --- interned API -------------------------------------------------

  std::size_t pool_count() const noexcept { return names_.size(); }

  /// Name of an interned pool; @p id must be < pool_count().
  const std::string& name_of(PoolId id) const;

  /// Id for a pool name, if any block was attributed to it.
  std::optional<PoolId> id_of(const std::string& pool) const;

  /// Pool that mined the block at @p height (kNoPoolId when
  /// unidentified or outside the attributed chain).
  PoolId pool_id_at(std::uint64_t height) const noexcept;

  std::uint64_t blocks_of(PoolId id) const noexcept;
  double hash_share(PoolId id) const noexcept;
  const std::unordered_set<btc::Address>& wallets_of(PoolId id) const;

  /// Interned ids ordered by descending block count (ties by name).
  std::vector<PoolId> pool_ids_by_blocks() const;

  // --- string facade -------------------------------------------------

  /// Pool that mined the block at @p height (nullopt when unidentified).
  std::optional<std::string> pool_of(std::uint64_t height) const;

  std::uint64_t blocks_of(const std::string& pool) const noexcept;
  std::uint64_t unidentified_blocks() const noexcept { return unidentified_; }
  std::uint64_t total_blocks() const noexcept { return total_blocks_; }

  /// Normalized hash rate estimate: blocks_of(pool) / total_blocks.
  double hash_share(const std::string& pool) const noexcept;

  /// Reward wallets observed in the pool's coinbases.
  const std::unordered_set<btc::Address>& wallets_of(const std::string& pool) const;

  /// Pool names ordered by descending block count.
  std::vector<std::string> pools_by_blocks() const;

 private:
  PoolId intern(const std::string& name);

  std::vector<std::string> names_;                            // PoolId -> name
  std::unordered_map<std::string, PoolId> ids_;               // name -> PoolId
  std::uint64_t first_height_ = 0;
  std::vector<PoolId> by_height_;                             // dense by height
  std::vector<std::uint64_t> counts_;                         // PoolId-indexed
  std::vector<std::unordered_set<btc::Address>> wallets_;     // PoolId-indexed
  std::uint64_t unidentified_ = 0;
  std::uint64_t total_blocks_ = 0;
};

/// All committed transactions that involve (spend from or pay to) any of
/// @p pool's inferred wallets. Coinbase rewards are not transactions in
/// the block body and are naturally excluded.
std::vector<TxRef> self_interest_txs(const btc::Chain& chain,
                                     const PoolAttribution& attribution,
                                     const std::string& pool);

/// Committed transactions paying to @p address (the scam-wallet filter).
std::vector<TxRef> txs_paying_to(const btc::Chain& chain, btc::Address address);

}  // namespace cn::core

#include "core/neutrality.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "core/audit_dataset.hpp"
#include "core/ppe.hpp"
#include "core/prio_test.hpp"
#include "core/sppe.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace cn::core {

double neutrality_score(const NeutralityReport& report,
                        const NeutralityOptions& options) {
  double score = 100.0;
  // Ordering fidelity: each PPE point above 1 costs 2 points (cap 20).
  score -= std::min(std::max(report.mean_ppe - 1.0, 0.0) * 2.0, 20.0);
  // Opaque boosts: each 0.1% of hoisted transactions costs 1 point (cap 40).
  score -= std::min(report.boosted_tx_rate * 1000.0, 40.0);
  // Self-dealing: a significant acceleration test costs 30 points, scaled
  // by how extreme the position evidence is.
  if (report.self_dealing_p < options.alpha) {
    score -= 15.0 + 15.0 * std::min(std::max(report.self_dealing_sppe, 0.0), 100.0) / 100.0;
  }
  // Floor discipline: sporadic below-floor inclusion is a mild deviation.
  score -= std::min(report.below_floor_block_rate * 20.0, 10.0);
  return std::max(score, 0.0);
}

namespace {

/// One pool's scorecard — the per-pool body of neutrality_reports. Each
/// call scans the chain independently of every other pool, which is what
/// the pool-parallel overload exploits.
NeutralityReport report_for_pool(const btc::Chain& chain,
                                 const PoolAttribution& attribution,
                                 const std::string& pool,
                                 const NeutralityOptions& options) {
  NeutralityReport report;
  report.pool = pool;

  double ppe_sum = 0.0;
  std::uint64_t ppe_blocks = 0;
  std::uint64_t boosted = 0;
  std::uint64_t floor_blocks = 0;

  for (const btc::Block& block : chain.blocks()) {
    const auto owner = attribution.pool_of(block.height());
    if (!owner.has_value() || *owner != pool) continue;
    ++report.blocks;
    report.txs += block.tx_count();

    if (const auto ppe = block_ppe(block); ppe.has_value()) {
      ppe_sum += *ppe;
      ++ppe_blocks;
    }
    for (double s : block_sppe(block)) {
      if (s >= options.sppe_boost_threshold) ++boosted;
    }
    // Floor discipline: a sub-floor transaction is a norm-III deviation
    // only when it is NOT the parent of an in-block CPFP child — GBT
    // legitimately admits sub-floor parents inside a paying package.
    std::unordered_set<btc::Txid> rescued_parents;
    for (std::size_t pos : block.cpfp_positions()) {
      for (const btc::TxInput& in : block.txs()[pos].inputs()) {
        if (!in.prev_txid.is_null()) rescued_parents.insert(in.prev_txid);
      }
    }
    for (const btc::Transaction& tx : block.txs()) {
      if (tx.fee_rate() < btc::FeeRate::from_sat_per_vb(1) &&
          !rescued_parents.contains(tx.id())) {
        ++floor_blocks;
        break;
      }
    }
  }
  if (ppe_blocks > 0) report.mean_ppe = ppe_sum / static_cast<double>(ppe_blocks);
  if (report.txs > 0) {
    report.boosted_tx_rate =
        static_cast<double>(boosted) / static_cast<double>(report.txs);
  }
  report.below_floor_block_rate =
      static_cast<double>(floor_blocks) / static_cast<double>(report.blocks);

  const auto own_txs = self_interest_txs(chain, attribution, pool);
  if (!own_txs.empty()) {
    const auto test =
        test_differential_prioritization(chain, attribution, pool, own_txs);
    report.self_dealing_p = test.p_accelerate;
    report.self_dealing_sppe = test.sppe;
    report.self_dealing_flagged =
        test.p_accelerate < options.alpha && test.y >= options.min_blocks;
  }

  report.score = neutrality_score(report, options);
  return report;
}

/// Columnar twin of report_for_pool: identical arithmetic over the
/// dataset's cached columns. The per-block PPE/SPPE values are the ones
/// block_ppe/block_sppe produced at build time, so every accumulated
/// double is bitwise equal to the object-graph scan's.
NeutralityReport report_for_pool(const AuditDataset& dataset, PoolId pool,
                                 const NeutralityOptions& options) {
  NeutralityReport report;
  report.pool = dataset.pool_name(pool);

  double ppe_sum = 0.0;
  std::uint64_t ppe_blocks = 0;
  std::uint64_t boosted = 0;
  std::uint64_t floor_blocks = 0;

  const std::span<const double> block_ppe = dataset.block_ppe();
  const std::span<const double> sppe = dataset.sppe();
  const std::span<const std::uint8_t> flags = dataset.tx_flags();
  for (const std::uint32_t b : dataset.blocks_of_pool(pool)) {
    const TxIdx begin = dataset.tx_begin(b);
    const TxIdx end = dataset.tx_end(b);
    ++report.blocks;
    report.txs += end - begin;

    if (!std::isnan(block_ppe[b])) {
      ppe_sum += block_ppe[b];
      ++ppe_blocks;
    }
    for (TxIdx t = begin; t < end; ++t) {
      if (sppe[t] >= options.sppe_boost_threshold) ++boosted;  // NaN: no
    }
    // Floor discipline (norm III): sub-floor txs that are NOT parents
    // rescued by an in-block CPFP child.
    for (TxIdx t = begin; t < end; ++t) {
      if ((flags[t] & kTxBelowFloor) != 0 && (flags[t] & kTxCpfpParent) == 0) {
        ++floor_blocks;
        break;
      }
    }
  }
  if (ppe_blocks > 0) report.mean_ppe = ppe_sum / static_cast<double>(ppe_blocks);
  if (report.txs > 0) {
    report.boosted_tx_rate =
        static_cast<double>(boosted) / static_cast<double>(report.txs);
  }
  report.below_floor_block_rate =
      static_cast<double>(floor_blocks) / static_cast<double>(report.blocks);

  const std::span<const TxIdx> own_txs = dataset.self_interest_txs(pool);
  if (!own_txs.empty()) {
    const auto test = test_differential_prioritization(dataset, pool, own_txs);
    report.self_dealing_p = test.p_accelerate;
    report.self_dealing_sppe = test.sppe;
    report.self_dealing_flagged =
        test.p_accelerate < options.alpha && test.y >= options.min_blocks;
  }

  report.score = neutrality_score(report, options);
  return report;
}

/// Pools clearing the min_blocks bar, in attribution (hash-share) order.
std::vector<std::string> eligible_pools(const PoolAttribution& attribution,
                                        const NeutralityOptions& options) {
  std::vector<std::string> pools;
  for (const std::string& pool : attribution.pools_by_blocks()) {
    if (attribution.blocks_of(pool) >= options.min_blocks) pools.push_back(pool);
  }
  return pools;
}

/// Worst-first ordering shared by both overloads.
void sort_reports(std::vector<NeutralityReport>& out) {
  std::sort(out.begin(), out.end(),
            [](const NeutralityReport& a, const NeutralityReport& b) {
              if (a.score != b.score) return a.score < b.score;
              return a.pool < b.pool;
            });
}

}  // namespace

std::vector<NeutralityReport> neutrality_reports(
    const btc::Chain& chain, const PoolAttribution& attribution,
    const NeutralityOptions& options) {
  std::vector<NeutralityReport> out;
  for (const std::string& pool : eligible_pools(attribution, options)) {
    out.push_back(report_for_pool(chain, attribution, pool, options));
  }
  sort_reports(out);
  return out;
}

std::vector<NeutralityReport> neutrality_reports(
    const btc::Chain& chain, const PoolAttribution& attribution,
    const NeutralityOptions& options, util::ThreadPool& workers) {
  const std::vector<std::string> pools = eligible_pools(attribution, options);
  std::vector<NeutralityReport> out =
      workers.parallel_map(pools.size(), [&](std::size_t i) {
        return report_for_pool(chain, attribution, pools[i], options);
      });
  sort_reports(out);
  return out;
}

std::vector<NeutralityReport> neutrality_reports(const AuditDataset& dataset,
                                                 const NeutralityOptions& options,
                                                 util::ThreadPool& workers) {
  std::vector<PoolId> pools;
  for (const PoolId id : dataset.pools_by_blocks()) {
    if (dataset.blocks_of(id) >= options.min_blocks) pools.push_back(id);
  }
  std::vector<NeutralityReport> out =
      workers.parallel_map(pools.size(), [&](std::size_t i) {
        return report_for_pool(dataset, pools[i], options);
      });
  sort_reports(out);
  return out;
}

}  // namespace cn::core

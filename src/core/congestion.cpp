#include "core/congestion.hpp"

#include <algorithm>
#include <unordered_set>

#include "core/audit_dataset.hpp"
#include "util/assert.hpp"

namespace cn::core {

std::vector<SeenTx> collect_seen_txs(const btc::Chain& chain,
                                     const FirstSeenFn& first_seen) {
  std::vector<SeenTx> out;
  out.reserve(chain.total_tx_count());
  for (const btc::Block& block : chain.blocks()) {
    const std::vector<std::size_t> cpfp = block.cpfp_positions();

    // Parents of in-block CPFP children.
    std::unordered_set<std::size_t> parent_positions;
    if (!cpfp.empty()) {
      std::unordered_set<btc::Txid> parents;
      for (std::size_t pos : cpfp) {
        for (const btc::TxInput& in : block.txs()[pos].inputs()) {
          if (!in.prev_txid.is_null()) parents.insert(in.prev_txid);
        }
      }
      for (std::size_t i = 0; i < block.txs().size(); ++i) {
        if (parents.contains(block.txs()[i].id())) parent_positions.insert(i);
      }
    }

    std::size_t next_cpfp = 0;
    for (std::size_t i = 0; i < block.txs().size(); ++i) {
      const bool is_cpfp = next_cpfp < cpfp.size() && cpfp[next_cpfp] == i;
      if (is_cpfp) ++next_cpfp;
      const auto seen = first_seen(block.txs()[i].id());
      if (!seen.has_value()) continue;
      SeenTx t;
      t.first_seen = *seen;
      t.fee_rate = block.txs()[i].fee_rate().sat_per_vbyte();
      t.block_height = block.height();
      t.cpfp = is_cpfp;
      t.cpfp_parent = parent_positions.contains(i);
      out.push_back(t);
    }
  }
  return out;
}

std::vector<SeenTx> collect_seen_txs(const AuditDataset& dataset,
                                     const FirstSeenFn& first_seen) {
  std::vector<SeenTx> out;
  out.reserve(dataset.tx_count());
  const std::span<const btc::Txid> ids = dataset.txids();
  const std::span<const double> rates = dataset.fee_rate();
  const std::span<const std::uint8_t> flags = dataset.tx_flags();
  const std::span<const std::uint64_t> heights = dataset.block_heights();
  for (TxIdx t = 0; t < static_cast<TxIdx>(dataset.tx_count()); ++t) {
    const auto seen = first_seen(ids[t]);
    if (!seen.has_value()) continue;
    SeenTx s;
    s.first_seen = *seen;
    s.fee_rate = rates[t];
    s.block_height = heights[dataset.block_of(t)];
    s.cpfp = (flags[t] & kTxCpfpChild) != 0;
    s.cpfp_parent = (flags[t] & kTxCpfpParent) != 0;
    out.push_back(s);
  }
  return out;
}

std::vector<SeenTx> pending_at(std::span<const SeenTx> txs, const btc::Chain& chain,
                               SimTime t) {
  std::vector<SeenTx> out;
  for (const SeenTx& tx : txs) {
    if (tx.first_seen > t) continue;
    if (chain.at_height(tx.block_height).mined_at() <= t) continue;
    out.push_back(tx);
  }
  return out;
}

std::vector<double> commit_delays_blocks(const btc::Chain& chain,
                                         std::span<const SeenTx> txs) {
  // Block times are strictly increasing; gather them once.
  std::vector<SimTime> block_times;
  block_times.reserve(chain.size());
  for (const btc::Block& b : chain.blocks()) block_times.push_back(b.mined_at());
  const std::uint64_t first_height = chain.empty() ? 0 : chain.front().height();

  std::vector<double> out;
  out.reserve(txs.size());
  for (const SeenTx& tx : txs) {
    // Index of the first block mined strictly after the arrival.
    const auto it = std::upper_bound(block_times.begin(), block_times.end(),
                                     tx.first_seen);
    const auto first_candidate =
        first_height + static_cast<std::uint64_t>(it - block_times.begin());
    double delay = 1.0;
    if (tx.block_height >= first_candidate) {
      delay = static_cast<double>(tx.block_height - first_candidate) + 1.0;
    }
    out.push_back(delay);
  }
  return out;
}

FeeBand fee_band(double sat_per_vb) noexcept {
  // 1e-4 BTC/KB == 10 sat/vB; 1e-3 BTC/KB == 100 sat/vB.
  if (sat_per_vb < 10.0) return FeeBand::kLow;
  if (sat_per_vb < 100.0) return FeeBand::kHigh;
  return FeeBand::kExorbitant;
}

std::vector<double> all_fee_rates(std::span<const SeenTx> txs) {
  std::vector<double> out;
  out.reserve(txs.size());
  for (const SeenTx& tx : txs) out.push_back(tx.fee_rate);
  return out;
}

std::vector<double> fee_rates_at_level(std::span<const SeenTx> txs,
                                       const node::SnapshotSeries& series,
                                       std::uint64_t unit_vsize,
                                       node::CongestionLevel level) {
  std::vector<SimTime> seen;
  seen.reserve(txs.size());
  for (const SeenTx& tx : txs) seen.push_back(tx.first_seen);
  const std::vector<node::CongestionLevel> levels =
      series.levels_for(seen, unit_vsize);
  std::vector<double> out;
  for (std::size_t i = 0; i < txs.size(); ++i) {
    if (levels[i] == level) out.push_back(txs[i].fee_rate);
  }
  return out;
}

std::vector<double> delays_for_band(std::span<const SeenTx> txs,
                                    std::span<const double> delays, FeeBand band) {
  CN_ASSERT(txs.size() == delays.size());
  std::vector<double> out;
  for (std::size_t i = 0; i < txs.size(); ++i) {
    if (fee_band(txs[i].fee_rate) == band) out.push_back(delays[i]);
  }
  return out;
}

std::vector<double> fee_rates_of_pool(
    std::span<const SeenTx> txs,
    const std::function<bool(std::uint64_t height)>& is_pool_block) {
  std::vector<double> out;
  for (const SeenTx& tx : txs) {
    if (is_pool_block(tx.block_height)) out.push_back(tx.fee_rate);
  }
  return out;
}

}  // namespace cn::core

#include "core/delay_model.hpp"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.hpp"
#include "util/assert.hpp"

namespace cn::core {

namespace {
constexpr int kLevels = 4;
}

std::size_t DelayModel::rate_bin(double sat_per_vb) const {
  const double clamped =
      std::clamp(sat_per_vb, options_.min_rate,
                 options_.max_rate * (1.0 - 1e-12));
  const double span = std::log(options_.max_rate) - std::log(options_.min_rate);
  const double pos = (std::log(clamped) - std::log(options_.min_rate)) / span;
  auto bin = static_cast<std::size_t>(pos * static_cast<double>(options_.rate_bins));
  if (bin >= options_.rate_bins) bin = options_.rate_bins - 1;
  return bin;
}

double DelayModel::bin_lo_rate(std::size_t bin) const {
  const double span = std::log(options_.max_rate) - std::log(options_.min_rate);
  return std::exp(std::log(options_.min_rate) +
                  span * static_cast<double>(bin) /
                      static_cast<double>(options_.rate_bins));
}

DelayModel DelayModel::fit(std::span<const SeenTx> txs,
                           std::span<const double> delays,
                           const node::SnapshotSeries& snapshots,
                           std::uint64_t unit_vsize, Options options) {
  CN_ASSERT(txs.size() == delays.size());
  CN_ASSERT(options.min_rate > 0.0 && options.min_rate < options.max_rate);
  CN_ASSERT(options.rate_bins > 0);

  DelayModel model;
  model.options_ = options;
  model.delays_.assign(kLevels, std::vector<std::vector<double>>(options.rate_bins));

  std::vector<SimTime> seen;
  seen.reserve(txs.size());
  for (const SeenTx& tx : txs) seen.push_back(tx.first_seen);
  const std::vector<node::CongestionLevel> levels =
      snapshots.levels_for(seen, unit_vsize);
  for (std::size_t i = 0; i < txs.size(); ++i) {
    const auto level = static_cast<std::size_t>(levels[i]);
    model.delays_[level][model.rate_bin(txs[i].fee_rate)].push_back(delays[i]);
    ++model.samples_;
  }
  for (auto& per_level : model.delays_) {
    for (auto& bucket : per_level) std::sort(bucket.begin(), bucket.end());
  }
  return model;
}

DelayModel DelayModel::fit(std::span<const SeenTx> txs,
                           std::span<const double> delays,
                           const node::SnapshotSeries& snapshots,
                           std::uint64_t unit_vsize) {
  return fit(txs, delays, snapshots, unit_vsize, Options{});
}

double DelayModel::predict_quantile(double sat_per_vb,
                                    node::CongestionLevel level, double q) const {
  CN_ASSERT(q >= 0.0 && q <= 1.0);
  if (delays_.empty()) return -1.0;
  const auto& per_level = delays_[static_cast<std::size_t>(level)];
  const std::size_t center = rate_bin(sat_per_vb);

  // Borrow neighbouring bins symmetrically until enough samples.
  std::vector<double> pooled;
  for (std::size_t radius = 0; radius < options_.rate_bins; ++radius) {
    if (radius == 0) {
      pooled = per_level[center];
    } else {
      if (center >= radius) {
        const auto& left = per_level[center - radius];
        pooled.insert(pooled.end(), left.begin(), left.end());
      }
      if (center + radius < options_.rate_bins) {
        const auto& right = per_level[center + radius];
        pooled.insert(pooled.end(), right.begin(), right.end());
      }
    }
    if (pooled.size() >= options_.min_samples) break;
  }
  if (pooled.empty()) return -1.0;
  std::sort(pooled.begin(), pooled.end());
  return stats::quantile_sorted(pooled, q);
}

double DelayModel::fee_for_target(double max_blocks, node::CongestionLevel level,
                                  double q) const {
  for (std::size_t bin = 0; bin < options_.rate_bins; ++bin) {
    const double probe = bin_lo_rate(bin) * 1.0001;
    const double predicted = predict_quantile(probe, level, q);
    if (predicted >= 0.0 && predicted <= max_blocks) return probe;
  }
  return -1.0;
}

}  // namespace cn::core

// Degraded-data assessment for the audit (the paper's §3 reality).
//
// The paper's measurement substrate was lossy: Mempool snapshots every
// 15 s with node restarts and outage windows, and a first-seen log that
// only covers transactions the observer actually relayed. Audit
// conclusions are sensitive to such observation gaps (Albrecht et al.,
// PAPERS.md), so instead of assuming perfect coverage this module grades
// it: per-block first-seen coverage, snapshot gaps against the expected
// cadence, and an effective coverage fraction the audit pipeline uses to
// mask low-coverage blocks and downgrade findings that rest on them.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "btc/chain.hpp"
#include "node/snapshot.hpp"

namespace cn::core {

struct QualityOptions {
  /// Observer snapshot period (paper: one Mempool snapshot every 15 s).
  SimTime snapshot_cadence = 15;
  /// Consecutive snapshots further apart than gap_factor * cadence are an
  /// outage window.
  double gap_factor = 2.0;
};

/// Coverage grade for one block.
struct BlockCoverage {
  std::uint64_t height = 0;
  /// Fraction of the block's transactions present in the first-seen log
  /// (1.0 when no first-seen data was supplied, or the block is empty).
  double first_seen_coverage = 1.0;
  /// The block's arrival window (previous block's mined_at to its own)
  /// overlaps a snapshot outage — nothing the observer claims about
  /// Mempool state during that window can be trusted.
  bool in_snapshot_gap = false;
  /// Effective coverage the audit masks on: first_seen_coverage, forced
  /// to 0 when the block sits in a snapshot gap.
  double coverage = 1.0;
};

struct DataQualityReport {
  bool has_snapshots = false;
  bool has_first_seen = false;
  std::vector<node::SnapshotGap> gaps;  ///< observer outage windows
  std::vector<BlockCoverage> blocks;    ///< chain order
  double mean_coverage = 1.0;           ///< mean effective coverage
  std::uint64_t first_seen_txs = 0;     ///< entries in the first-seen log

  /// Effective coverage of @p height; 1.0 for heights outside the graded
  /// chain (no evidence either way).
  double coverage_at(std::uint64_t height) const noexcept;
  const BlockCoverage* find(std::uint64_t height) const noexcept;
  std::uint64_t low_coverage_blocks(double threshold) const noexcept;

  // Populated by assess_data_quality for O(1) coverage_at lookups.
  std::unordered_map<std::uint64_t, std::size_t> index;
};

/// Grades @p chain against the auxiliary observations. Either series may
/// be null: absent evidence never lowers coverage (a chain audited
/// without Mempool data keeps the historical perfect-coverage
/// behaviour); present-but-gappy evidence does.
DataQualityReport assess_data_quality(
    const btc::Chain& chain, const node::SnapshotSeries* snapshots,
    const std::unordered_map<btc::Txid, SimTime>* first_seen,
    const QualityOptions& options = {});

}  // namespace cn::core

#include "core/prio_test.hpp"

#include <algorithm>
#include <unordered_set>

#include "core/sppe.hpp"
#include "stats/binomial.hpp"
#include "stats/fisher.hpp"
#include "util/assert.hpp"

namespace cn::core {

std::uint64_t count_c_blocks(const std::vector<TxRef>& txs) {
  std::unordered_set<std::uint64_t> heights;
  for (const TxRef& ref : txs) heights.insert(ref.block_height);
  return heights.size();
}

std::vector<TxRef> restrict_to_heights(const std::vector<TxRef>& txs,
                                       std::uint64_t first_height,
                                       std::uint64_t last_height) {
  std::vector<TxRef> out;
  for (const TxRef& ref : txs) {
    if (ref.block_height >= first_height && ref.block_height <= last_height) {
      out.push_back(ref);
    }
  }
  return out;
}

namespace {

struct Counts {
  std::uint64_t x = 0;
  std::uint64_t y = 0;
};

Counts count_xy(const PoolAttribution& attribution, const std::string& pool,
                const std::vector<TxRef>& c_txs) {
  std::unordered_set<std::uint64_t> c_blocks;
  for (const TxRef& ref : c_txs) c_blocks.insert(ref.block_height);
  Counts c;
  c.y = c_blocks.size();
  for (std::uint64_t height : c_blocks) {
    const auto owner = attribution.pool_of(height);
    if (owner.has_value() && *owner == pool) ++c.x;
  }
  return c;
}

}  // namespace

PrioTestResult test_differential_prioritization(
    const btc::Chain& chain, const PoolAttribution& attribution,
    const std::string& pool, const std::vector<TxRef>& c_txs,
    double theta0_override) {
  PrioTestResult r;
  r.pool = pool;
  r.theta0 = theta0_override > 0.0 ? theta0_override : attribution.hash_share(pool);
  CN_ASSERT(r.theta0 >= 0.0 && r.theta0 <= 1.0);

  const Counts c = count_xy(attribution, pool, c_txs);
  r.x = c.x;
  r.y = c.y;
  if (r.y == 0) return r;  // no evidence either way: p-values stay 1

  r.p_accelerate = stats::acceleration_p_value(r.x, r.y, r.theta0);
  r.p_decelerate = stats::deceleration_p_value(r.x, r.y, r.theta0);
  r.sppe = mean_sppe(chain, c_txs, attribution, pool, &r.sppe_count);
  return r;
}

PrioTestResult test_differential_prioritization(const AuditDataset& dataset,
                                                PoolId pool,
                                                std::span<const TxIdx> c_txs,
                                                double theta0_override) {
  PrioTestResult r;
  r.pool = dataset.pool_name(pool);
  r.theta0 = theta0_override > 0.0 ? theta0_override : dataset.hash_share(pool);
  CN_ASSERT(r.theta0 >= 0.0 && r.theta0 <= 1.0);

  // c_txs ascends, so distinct blocks appear as runs: count them (y) and
  // the pool-mined ones (x) in a single pass, no hash set needed.
  const std::span<const PoolId> block_pool = dataset.block_pool();
  bool have_block = false;
  std::uint32_t last_block = 0;
  for (const TxIdx t : c_txs) {
    const std::uint32_t b = dataset.block_of(t);
    if (have_block && b == last_block) continue;
    have_block = true;
    last_block = b;
    ++r.y;
    if (block_pool[b] == pool) ++r.x;
  }
  if (r.y == 0) return r;  // no evidence either way: p-values stay 1

  r.p_accelerate = stats::acceleration_p_value(r.x, r.y, r.theta0);
  r.p_decelerate = stats::deceleration_p_value(r.x, r.y, r.theta0);
  r.sppe = mean_sppe(dataset, c_txs, pool, &r.sppe_count);
  return r;
}

double windowed_acceleration_p_value(const btc::Chain& chain,
                                     const PoolAttribution& attribution,
                                     const std::string& pool,
                                     const std::vector<TxRef>& c_txs,
                                     unsigned windows) {
  CN_ASSERT(windows >= 1);
  if (chain.empty()) return 1.0;
  const std::uint64_t first = chain.front().height();
  const std::uint64_t last = chain.back().height();
  const std::uint64_t span = last - first + 1;

  std::vector<double> p_values;
  for (unsigned w = 0; w < windows; ++w) {
    const std::uint64_t lo = first + span * w / windows;
    const std::uint64_t hi = first + span * (w + 1) / windows - 1;
    const std::vector<TxRef> slice = restrict_to_heights(c_txs, lo, hi);
    if (slice.empty()) continue;

    // Per-window hash share estimated from the window's blocks only.
    std::uint64_t pool_blocks = 0;
    for (std::uint64_t h = lo; h <= hi; ++h) {
      const auto owner = attribution.pool_of(h);
      if (owner.has_value() && *owner == pool) ++pool_blocks;
    }
    const double theta0 =
        static_cast<double>(pool_blocks) / static_cast<double>(hi - lo + 1);
    if (theta0 <= 0.0 || theta0 >= 1.0) continue;

    std::unordered_set<std::uint64_t> c_blocks;
    for (const TxRef& ref : slice) c_blocks.insert(ref.block_height);
    std::uint64_t x = 0;
    for (std::uint64_t h : c_blocks) {
      const auto owner = attribution.pool_of(h);
      if (owner.has_value() && *owner == pool) ++x;
    }
    p_values.push_back(stats::acceleration_p_value(x, c_blocks.size(), theta0));
  }
  if (p_values.empty()) return 1.0;
  return stats::fisher_combine(p_values);
}

}  // namespace cn::core

#include "core/audit_dataset.hpp"

#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "core/ppe.hpp"
#include "core/sppe.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace cn::core {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

template <typename T>
std::size_t vec_bytes(const std::vector<T>& v) noexcept {
  return v.capacity() * sizeof(T);
}

/// Build telemetry (DESIGN.md §10). Intern hits/misses are tallied into
/// plain locals inside the scan and recorded once at the end, so the
/// per-output path costs nothing beyond the comparison it already does.
struct BuildMetrics {
  obs::Counter builds{"core.audit_dataset.builds"};
  obs::Counter blocks{"core.audit_dataset.blocks"};
  obs::Counter txs{"core.audit_dataset.txs"};
  obs::Counter intern_hits{"core.audit_dataset.intern_hits"};
  obs::Counter intern_misses{"core.audit_dataset.intern_misses"};
  obs::Gauge memory_bytes{"core.audit_dataset.memory_bytes"};
  obs::Gauge bytes_per_tx{"core.audit_dataset.bytes_per_tx"};
};

BuildMetrics& build_metrics() {
  static BuildMetrics* m = new BuildMetrics();  // interned once per process
  return *m;
}

}  // namespace

AuditDataset AuditDataset::build(const btc::Chain& chain,
                                 const PoolAttribution& attribution,
                                 util::ThreadPool& workers,
                                 const btc::AddressTable* interned_addresses) {
  const obs::Span span("core.audit_dataset.build");
  AuditDataset ds;
  const std::size_t nblocks = chain.size();
  const std::size_t npools = attribution.pool_count();

  ds.pool_names_.reserve(npools);
  for (PoolId id = 0; id < npools; ++id) ds.pool_names_.push_back(attribution.name_of(id));
  ds.pools_by_blocks_ = attribution.pool_ids_by_blocks();
  if (interned_addresses != nullptr) ds.addresses_ = *interned_addresses;

  // Pass 1 (serial): block columns and the tx offset table.
  ds.block_height_.reserve(nblocks);
  ds.block_mined_at_.reserve(nblocks);
  ds.block_pool_.reserve(nblocks);
  ds.block_fees_.reserve(nblocks);
  ds.tx_begin_.reserve(nblocks + 1);
  std::size_t ntxs = 0;
  for (const btc::Block& block : chain.blocks()) {
    ds.block_height_.push_back(block.height());
    ds.block_mined_at_.push_back(block.mined_at());
    ds.block_pool_.push_back(attribution.pool_id_at(block.height()));
    ds.block_fees_.push_back(block.total_fees().value);
    ds.tx_begin_.push_back(static_cast<TxIdx>(ntxs));
    ntxs += block.tx_count();
  }
  CN_ASSERT(ntxs < static_cast<std::size_t>(~TxIdx{0}));
  ds.tx_begin_.push_back(static_cast<TxIdx>(ntxs));
  ds.block_ppe_.assign(nblocks, kNaN);

  // Per-pool block lists and tx counts fall straight out of pass 1.
  ds.pool_blocks_.resize(npools);
  ds.pool_tx_counts_.assign(npools, 0);
  for (std::size_t b = 0; b < nblocks; ++b) {
    const PoolId p = ds.block_pool_[b];
    if (p == kNoPoolId) continue;
    ds.pool_blocks_[p].push_back(static_cast<std::uint32_t>(b));
    ds.pool_tx_counts_[p] += ds.tx_begin_[b + 1] - ds.tx_begin_[b];
  }

  // Wallet -> owning pools, for the single self-interest scan below.
  std::unordered_map<btc::Address, std::vector<PoolId>> wallet_pools;
  for (PoolId p = 0; p < npools; ++p) {
    for (const btc::Address& a : attribution.wallets_of(p)) wallet_pools[a].push_back(p);
  }

  // Pass 2 (serial): transaction columns, interned outputs, and the
  // per-pool self-interest lists — one chain scan instead of one per
  // pool. TxIdx ascends with (block, position), so every per-pool list
  // comes out ascending for free.
  ds.fee_rate_.resize(ntxs);
  ds.vsize_.resize(ntxs);
  ds.issued_.resize(ntxs);
  ds.txid_.resize(ntxs);
  ds.tx_flags_.assign(ntxs, 0);
  ds.sppe_.assign(ntxs, kNaN);
  ds.tx_block_.resize(ntxs);
  ds.out_begin_.reserve(ntxs + 1);
  ds.self_interest_.resize(npools);

  const btc::FeeRate floor = btc::FeeRate::from_sat_per_vb(1);
  std::vector<PoolId> involved;
  std::uint64_t intern_hits = 0;
  std::uint64_t intern_misses = 0;
  TxIdx t = 0;
  std::uint32_t out_off = 0;
  for (std::size_t b = 0; b < nblocks; ++b) {
    const btc::Block& block = chain.blocks()[b];
    for (const btc::Transaction& tx : block.txs()) {
      ds.fee_rate_[t] = tx.fee_rate().sat_per_vbyte();
      ds.vsize_[t] = tx.vsize();
      ds.issued_[t] = tx.issued();
      ds.txid_[t] = tx.id();
      ds.tx_block_[t] = static_cast<std::uint32_t>(b);
      if (tx.fee_rate() < floor) ds.tx_flags_[t] |= kTxBelowFloor;

      ds.out_begin_.push_back(out_off);
      for (const btc::TxOutput& o : tx.outputs()) {
        const std::size_t before = ds.addresses_.size();
        ds.out_addr_.push_back(ds.addresses_.intern(o.to));
        if (ds.addresses_.size() == before) {
          ++intern_hits;
        } else {
          ++intern_misses;
        }
        ++out_off;
      }

      involved.clear();
      const auto note = [&](const btc::Address& a) {
        const auto it = wallet_pools.find(a);
        if (it == wallet_pools.end()) return;
        for (const PoolId p : it->second) {
          bool seen = false;
          for (const PoolId q : involved) seen = seen || q == p;
          if (!seen) involved.push_back(p);
        }
      };
      for (const btc::TxInput& in : tx.inputs()) note(in.owner);
      for (const btc::TxOutput& o : tx.outputs()) note(o.to);
      for (const PoolId p : involved) ds.self_interest_[p].push_back(t);
      ++t;
    }
  }
  ds.out_begin_.push_back(out_off);

  // Pass 3 (parallel per block): cached norm statistics and CPFP flags.
  // Each task calls the object-graph primitives (core/ppe.hpp,
  // core/sppe.hpp) exactly once per block and writes only its own slots,
  // so the cached doubles are bitwise identical to what the legacy
  // pipeline recomputes on demand, at every thread count.
  workers.parallel_for(nblocks, [&](std::size_t b) {
    const btc::Block& block = chain.blocks()[b];
    const TxIdx begin = ds.tx_begin_[b];

    if (const auto ppe = core::block_ppe(block)) ds.block_ppe_[b] = *ppe;
    const std::vector<double> sppe = core::block_sppe(block);
    for (std::size_t i = 0; i < sppe.size(); ++i) ds.sppe_[begin + i] = sppe[i];

    const std::vector<std::size_t> cpfp = block.cpfp_positions();
    if (cpfp.empty()) return;
    std::unordered_set<btc::Txid> parents;
    for (const std::size_t pos : cpfp) {
      ds.tx_flags_[begin + pos] |= kTxCpfpChild;
      for (const btc::TxInput& in : block.txs()[pos].inputs()) {
        if (!in.prev_txid.is_null()) parents.insert(in.prev_txid);
      }
    }
    for (std::size_t i = 0; i < block.txs().size(); ++i) {
      if (parents.contains(block.txs()[i].id())) ds.tx_flags_[begin + i] |= kTxCpfpParent;
    }
  });

  BuildMetrics& m = build_metrics();
  m.builds.add();
  m.blocks.add(nblocks);
  m.txs.add(ntxs);
  m.intern_hits.add(intern_hits);
  m.intern_misses.add(intern_misses);
  const std::size_t bytes = ds.memory_bytes();
  m.memory_bytes.set(static_cast<double>(bytes));
  m.bytes_per_tx.set(ntxs == 0 ? 0.0
                               : static_cast<double>(bytes) /
                                     static_cast<double>(ntxs));
  return ds;
}

AuditDataset AuditDataset::restore(AuditDatasetColumns&& columns) {
  const obs::Span span("core.audit_dataset.restore");
  AuditDataset ds;
  ds.pool_names_ = std::move(columns.pool_names);
  ds.pools_by_blocks_ = std::move(columns.pools_by_blocks);
  ds.block_height_ = std::move(columns.block_height);
  ds.block_mined_at_ = std::move(columns.block_mined_at);
  ds.block_pool_ = std::move(columns.block_pool);
  ds.block_fees_ = std::move(columns.block_fees);
  ds.block_ppe_ = std::move(columns.block_ppe);
  ds.tx_begin_ = std::move(columns.tx_begin);
  ds.fee_rate_ = std::move(columns.fee_rate);
  ds.vsize_ = std::move(columns.vsize);
  ds.issued_ = std::move(columns.issued);
  ds.txid_ = std::move(columns.txid);
  ds.tx_flags_ = std::move(columns.tx_flags);
  ds.sppe_ = std::move(columns.sppe);
  ds.addresses_ = std::move(columns.addresses);
  ds.out_begin_ = std::move(columns.out_begin);
  ds.out_addr_ = std::move(columns.out_addr);
  ds.pool_blocks_ = std::move(columns.pool_blocks);
  ds.pool_tx_counts_ = std::move(columns.pool_tx_counts);
  ds.self_interest_ = std::move(columns.self_interest);

  CN_ASSERT(ds.tx_begin_.size() == ds.block_height_.size() + 1);
  CN_ASSERT(ds.out_begin_.size() == ds.fee_rate_.size() + 1);
  ds.tx_block_.resize(ds.fee_rate_.size());
  for (std::size_t b = 0; b + 1 < ds.tx_begin_.size(); ++b) {
    for (TxIdx t = ds.tx_begin_[b]; t < ds.tx_begin_[b + 1]; ++t) {
      ds.tx_block_[t] = static_cast<std::uint32_t>(b);
    }
  }
  return ds;
}

const std::string& AuditDataset::pool_name(PoolId id) const {
  CN_ASSERT(id < pool_names_.size());
  return pool_names_[id];
}

double AuditDataset::hash_share(PoolId id) const noexcept {
  if (block_height_.empty()) return 0.0;
  return static_cast<double>(blocks_of(id)) /
         static_cast<double>(block_height_.size());
}

std::span<const std::uint32_t> AuditDataset::blocks_of_pool(PoolId id) const {
  static const std::vector<std::uint32_t> kEmpty;
  return id < pool_blocks_.size() ? std::span<const std::uint32_t>(pool_blocks_[id])
                                  : std::span<const std::uint32_t>(kEmpty);
}

std::uint64_t AuditDataset::pool_tx_count(PoolId id) const noexcept {
  return id < pool_tx_counts_.size() ? pool_tx_counts_[id] : 0;
}

std::span<const TxIdx> AuditDataset::self_interest_txs(PoolId id) const {
  static const std::vector<TxIdx> kEmpty;
  return id < self_interest_.size() ? std::span<const TxIdx>(self_interest_[id])
                                    : std::span<const TxIdx>(kEmpty);
}

std::vector<TxIdx> AuditDataset::txs_paying_to(btc::Address address) const {
  std::vector<TxIdx> out;
  const btc::AddressId id = addresses_.lookup(address);
  if (id == btc::kNoAddressId) return out;
  for (TxIdx t = 0; t < static_cast<TxIdx>(tx_count()); ++t) {
    for (std::uint32_t k = out_begin_[t]; k < out_begin_[t + 1]; ++k) {
      if (out_addr_[k] == id) {
        out.push_back(t);
        break;
      }
    }
  }
  return out;
}

std::size_t AuditDataset::memory_bytes() const noexcept {
  std::size_t total = vec_bytes(block_height_) + vec_bytes(block_mined_at_) +
                      vec_bytes(block_pool_) + vec_bytes(block_fees_) +
                      vec_bytes(block_ppe_) + vec_bytes(tx_begin_) +
                      vec_bytes(fee_rate_) + vec_bytes(vsize_) + vec_bytes(issued_) +
                      vec_bytes(txid_) + vec_bytes(tx_flags_) + vec_bytes(sppe_) +
                      vec_bytes(tx_block_) + vec_bytes(out_begin_) +
                      vec_bytes(out_addr_) + vec_bytes(pool_tx_counts_) +
                      vec_bytes(pools_by_blocks_) + addresses_.memory_bytes();
  for (const auto& name : pool_names_) total += name.size();
  for (const auto& v : pool_blocks_) total += vec_bytes(v);
  for (const auto& v : self_interest_) total += vec_bytes(v);
  return total;
}

}  // namespace cn::core

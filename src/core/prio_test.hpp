// The paper's statistical test for differential prioritization (§5.1).
//
// Given a set of committed "c-transactions" and a pool m with estimated
// hash share theta0, let y = number of blocks containing at least one
// c-transaction (c-blocks) and x = how many of those m mined. Under the
// null (no differential treatment) x ~ Binomial(y, theta0). One-sided
// exact binomial p-values test acceleration (theta > theta0) and
// deceleration (theta < theta0); the SPPE of the c-transactions inside
// m's blocks corroborates direction (tables 2 and 3).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "btc/chain.hpp"
#include "core/audit_dataset.hpp"
#include "core/wallet_inference.hpp"

namespace cn::core {

struct PrioTestResult {
  std::string pool;
  double theta0 = 0.0;       ///< estimated normalized hash rate
  std::uint64_t x = 0;       ///< c-blocks mined by the pool
  std::uint64_t y = 0;       ///< total c-blocks
  double p_accelerate = 1.0; ///< Pr[B >= x] under H0
  double p_decelerate = 1.0; ///< Pr[B <= x] under H0
  double sppe = 0.0;         ///< mean SPPE of c-txs within the pool's blocks
  std::size_t sppe_count = 0;
};

/// Runs the test of pool @p pool on @p c_txs. theta0 is estimated from
/// the chain as blocks_of(pool)/total_blocks unless @p theta0_override
/// is positive.
PrioTestResult test_differential_prioritization(
    const btc::Chain& chain, const PoolAttribution& attribution,
    const std::string& pool, const std::vector<TxRef>& c_txs,
    double theta0_override = -1.0);

/// Columnar variant over a TxIdx selection (must be ascending, as every
/// AuditDataset list is). Produces field-identical results to the
/// object-graph overload on the same selection.
PrioTestResult test_differential_prioritization(const AuditDataset& dataset,
                                                PoolId pool,
                                                std::span<const TxIdx> c_txs,
                                                double theta0_override = -1.0);

/// Number of distinct blocks containing at least one of @p txs.
std::uint64_t count_c_blocks(const std::vector<TxRef>& txs);

/// Restricts a tx set to blocks within [first_height, last_height]
/// (the Table 3 scam-window slicing).
std::vector<TxRef> restrict_to_heights(const std::vector<TxRef>& txs,
                                       std::uint64_t first_height,
                                       std::uint64_t last_height);

/// Windowed variant for long horizons with drifting hash rates
/// (§5.1.3): splits the chain into @p windows equal height ranges, tests
/// each, and combines the per-window acceleration p-values with Fisher's
/// method. Windows with no c-blocks are skipped.
double windowed_acceleration_p_value(const btc::Chain& chain,
                                     const PoolAttribution& attribution,
                                     const std::string& pool,
                                     const std::vector<TxRef>& c_txs,
                                     unsigned windows);

}  // namespace cn::core

#include "core/report.hpp"

#include "util/csv.hpp"
#include "util/strings.hpp"

namespace cn::core {

TablePrinter::TablePrinter(std::vector<std::string> headers,
                           std::vector<int> widths)
    : headers_(std::move(headers)), widths_(std::move(widths)) {
  if (widths_.size() != headers_.size()) {
    widths_.clear();
    for (const std::string& h : headers_) {
      widths_.push_back(static_cast<int>(h.size()) + 4);
    }
  }
}

void TablePrinter::print_header(std::FILE* out) const {
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    std::fprintf(out, "%s",
                 pad_left(headers_[i], static_cast<std::size_t>(widths_[i])).c_str());
  }
  std::fprintf(out, "\n");
  print_rule(out);
}

void TablePrinter::print_rule(std::FILE* out) const {
  int total = 0;
  for (int w : widths_) total += w;
  std::fprintf(out, "%s\n", std::string(static_cast<std::size_t>(total), '-').c_str());
}

void TablePrinter::print_row(const std::vector<std::string>& cells,
                             std::FILE* out) const {
  for (std::size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
    std::fprintf(out, "%s",
                 pad_left(cells[i], static_cast<std::size_t>(widths_[i])).c_str());
  }
  std::fprintf(out, "\n");
}

std::string format_p_value(double p) {
  if (p < 0.001) return "<0.001";
  return fixed(p, 4);
}

void print_cdf_summary(const std::string& name, const stats::Ecdf& ecdf,
                       std::FILE* out) {
  if (ecdf.empty()) {
    std::fprintf(out, "%s: (empty)\n", name.c_str());
    return;
  }
  std::fprintf(out,
               "%s: n=%zu  p10=%.3f  p25=%.3f  p50=%.3f  p75=%.3f  p90=%.3f  "
               "p99=%.3f  max=%.3f\n",
               name.c_str(), ecdf.size(), ecdf.quantile(0.10), ecdf.quantile(0.25),
               ecdf.quantile(0.50), ecdf.quantile(0.75), ecdf.quantile(0.90),
               ecdf.quantile(0.99), ecdf.max());
}

void print_summary_row(const std::string& label, const stats::Summary& s,
                       std::FILE* out) {
  std::fprintf(out,
               "%-14s n=%-8zu mean=%-8.2f std=%-8.2f min=%-6.2f p25=%-6.2f "
               "med=%-6.2f p75=%-6.2f max=%.2f\n",
               label.c_str(), s.count, s.mean, s.stddev, s.min, s.p25, s.median,
               s.p75, s.max);
}

bool write_cdf_csv(const std::string& path, const stats::Ecdf& ecdf,
                   const std::string& value_label) {
  CsvWriter csv(path);
  if (!csv.ok()) return false;
  csv.header({value_label, "cdf"});
  for (const auto& point : ecdf.points()) {
    csv.field(point.x, 6).field(point.f, 6);
    csv.end_row();
  }
  return true;
}

}  // namespace cn::core

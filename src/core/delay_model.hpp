// Empirical fee -> commit-delay model.
//
// §4.1 of the paper shows users pay more to wait less, and that wallets
// set fees from recent-block distributions *assuming miners follow the
// norm*. This model is the other direction done right: fit the observed
// (fee-rate, congestion-at-issue) -> delay distribution and answer the
// two questions wallets actually have —
//   "if I pay X under this congestion, how long will I wait?"     and
//   "what must I pay to commit within D blocks with probability q?"
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/pair_violations.hpp"
#include "node/snapshot.hpp"

namespace cn::core {

class DelayModel {
 public:
  /// Fee-rate bin edges are logarithmic over [min_rate, max_rate) sat/vB.
  struct Options {
    double min_rate = 0.5;
    double max_rate = 512.0;
    std::size_t rate_bins = 20;
    /// Bins with fewer samples than this borrow neighbours at query time.
    std::size_t min_samples = 20;
  };

  /// Fits from index-aligned observations (as produced by
  /// collect_seen_txs + commit_delays_blocks). Congestion at issue time
  /// comes from the observer's snapshot series with bins relative to
  /// @p unit_vsize.
  static DelayModel fit(std::span<const SeenTx> txs,
                        std::span<const double> delays,
                        const node::SnapshotSeries& snapshots,
                        std::uint64_t unit_vsize, Options options);
  /// Same, with default Options (separate overload: a default argument
  /// cannot use the nested aggregate's member initializers here).
  static DelayModel fit(std::span<const SeenTx> txs,
                        std::span<const double> delays,
                        const node::SnapshotSeries& snapshots,
                        std::uint64_t unit_vsize);

  /// Delay (blocks) such that a fraction @p q of observed transactions at
  /// this fee-rate/congestion committed at least this fast. Returns a
  /// negative value when no data is available anywhere near the query.
  double predict_quantile(double sat_per_vb, node::CongestionLevel level,
                          double q) const;

  /// Cheapest observed fee-rate (sat/vB) whose q-quantile delay is at
  /// most @p max_blocks under @p level; negative if no fee achieved it.
  double fee_for_target(double max_blocks, node::CongestionLevel level,
                        double q) const;

  std::size_t sample_count() const noexcept { return samples_; }
  const Options& options() const noexcept { return options_; }

 private:
  DelayModel() = default;

  std::size_t rate_bin(double sat_per_vb) const;
  double bin_lo_rate(std::size_t bin) const;

  Options options_{};
  /// delays_[level][rate_bin] = sorted delays.
  std::vector<std::vector<std::vector<double>>> delays_;
  std::size_t samples_ = 0;
};

}  // namespace cn::core

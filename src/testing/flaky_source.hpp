// A hostile StreamSource for robustness testing.
//
// Production feeds fail in two characteristic ways the daemon must
// survive: transient read errors (flaky disk / dropped connection —
// retryable) and stalls (a peer that stops answering — the per-read
// deadline must fire so the caller's watchdog, not the kernel, decides
// what "stuck" means). FlakyStreamSource wraps any StreamSource and
// injects both, deterministically per seed, so the RetryingSource
// backoff path and the daemon's watchdog/readiness degradation are
// testable as properties.
#pragma once

#include <cstdint>

#include "io/stream_source.hpp"
#include "util/rng.hpp"

namespace cn::testing {

struct FlakyOptions {
  /// Per-read probability of a kTransient failure (the read can be
  /// retried; the cursor did not advance).
  double transient_rate = 0.0;
  /// Every n-th read stalls (0 = never): the source sleeps for
  /// stall_ms and, when that exceeds the caller's deadline, reports
  /// kTimeout for that attempt instead of producing the event.
  std::uint64_t stall_every = 0;
  int stall_ms = 50;
  /// After this many successful reads the source turns permanently
  /// kCorrupt (0 = never) — the poisoned-feed end state.
  std::uint64_t corrupt_after = 0;
};

class FlakyStreamSource : public io::StreamSource {
 public:
  FlakyStreamSource(io::StreamSource& inner, std::uint64_t seed,
                    FlakyOptions options);

  io::StreamStatus next(io::StreamEvent& out, int deadline_ms) override;
  bool seek(std::uint64_t seq) override { return inner_->seek(seq); }
  std::uint64_t size() const override { return inner_->size(); }

  std::uint64_t transient_failures() const noexcept { return transients_; }
  std::uint64_t stalls() const noexcept { return stalls_; }

 private:
  io::StreamSource* inner_;
  Rng rng_;
  FlakyOptions options_;
  std::uint64_t reads_ = 0;       ///< next() calls observed
  std::uint64_t delivered_ = 0;   ///< successful events passed through
  std::uint64_t transients_ = 0;
  std::uint64_t stalls_ = 0;
};

}  // namespace cn::testing

#include "testing/flaky_source.hpp"

#include <chrono>
#include <thread>

namespace cn::testing {

FlakyStreamSource::FlakyStreamSource(io::StreamSource& inner,
                                     std::uint64_t seed, FlakyOptions options)
    : inner_(&inner), rng_(seed), options_(options) {}

io::StreamStatus FlakyStreamSource::next(io::StreamEvent& out, int deadline_ms) {
  ++reads_;
  if (options_.corrupt_after > 0 && delivered_ >= options_.corrupt_after) {
    return io::StreamStatus::kCorrupt;
  }
  if (options_.stall_every > 0 && reads_ % options_.stall_every == 0) {
    ++stalls_;
    // A real stalled peer blocks the caller up to its deadline; sleep
    // the smaller of the two so tests stay fast, and report kTimeout
    // when the stall would have outlived the deadline.
    const int sleep_ms = std::min(options_.stall_ms, std::max(deadline_ms, 0));
    if (sleep_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    }
    if (options_.stall_ms > deadline_ms) return io::StreamStatus::kTimeout;
  }
  if (options_.transient_rate > 0.0 && rng_.chance(options_.transient_rate)) {
    ++transients_;
    return io::StreamStatus::kTransient;
  }
  const io::StreamStatus status = inner_->next(out, deadline_ms);
  if (status == io::StreamStatus::kOk) ++delivered_;
  return status;
}

}  // namespace cn::testing

#include "testing/fault_injector.hpp"

#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>

#include "io/cnb.hpp"

namespace cn::testing {

namespace {

/// Physical lines of @p path, without terminators. The injector works on
/// physical lines; exported data sets never quote a newline into a field
/// (txids, numbers, and pool tags are newline-free).
std::optional<std::vector<std::string>> read_lines(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::vector<std::string> lines;
  std::string line;
  std::istringstream stream(buffer.str());
  while (std::getline(stream, line)) lines.push_back(line);
  return lines;
}

bool write_lines(const std::string& path, const std::vector<std::string>& lines,
                 bool final_newline = true) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    out << lines[i];
    if (i + 1 < lines.size() || final_newline) out << '\n';
  }
  out.flush();
  return out.good();
}

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  for (char c : line) {
    if (c == ',') {
      fields.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  fields.push_back(cur);
  return fields;
}

std::string join_fields(const std::vector<std::string>& fields) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += fields[i];
  }
  return out;
}

bool is_hex64(const std::string& s) {
  if (s.size() != 64) return false;
  for (char c : s) {
    if (!std::isxdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

bool is_number(const std::string& s) {
  if (s.empty()) return false;
  std::size_t i = s[0] == '-' ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCorruptField: return "corrupt-field";
    case FaultKind::kDropRow: return "drop-row";
    case FaultKind::kDuplicateRow: return "duplicate-row";
    case FaultKind::kSwapRows: return "swap-rows";
    case FaultKind::kTruncateFile: return "truncate-file";
    case FaultKind::kDeleteSnapshotWindow: return "delete-snapshot-window";
    case FaultKind::kCorruptSection: return "corrupt-section";
    case FaultKind::kTornWrite: return "torn-write";
  }
  return "unknown";
}

std::size_t InjectionLog::count(FaultKind kind) const noexcept {
  std::size_t n = 0;
  for (const InjectedFault& f : faults)
    if (f.kind == kind) ++n;
  return n;
}

std::vector<const InjectedFault*> InjectionLog::detectable() const {
  std::vector<const InjectedFault*> out;
  for (const InjectedFault& f : faults)
    if (f.detectable) out.push_back(&f);
  return out;
}

FaultInjector::FaultInjector(std::uint64_t seed) : rng_(seed) {}

bool FaultInjector::inject_file(const std::string& src, const std::string& dst,
                                const FaultOptions& options, InjectionLog& log) {
  const auto lines = read_lines(src);
  if (!lines || lines->empty()) return false;

  std::vector<FaultKind> row_kinds;
  for (FaultKind k : options.kinds) {
    if (k != FaultKind::kTruncateFile && k != FaultKind::kDeleteSnapshotWindow &&
        k != FaultKind::kCorruptSection) {
      row_kinds.push_back(k);
    }
  }

  std::vector<std::string> out;
  out.reserve(lines->size());
  out.push_back((*lines)[0]);  // header passes through untouched

  for (std::size_t i = 1; i < lines->size(); ++i) {
    const std::string& line = (*lines)[i];
    if (row_kinds.empty() || !rng_.chance(options.row_corruption_rate)) {
      out.push_back(line);
      continue;
    }
    const FaultKind kind = row_kinds[rng_.uniform_below(row_kinds.size())];
    switch (kind) {
      case FaultKind::kCorruptField: {
        // Quoted lines would need field-aware surgery; pass them through
        // rather than risk an ambiguous mutation (exports rarely quote).
        if (line.find('"') != std::string::npos) {
          out.push_back(line);
          break;
        }
        std::vector<std::string> fields = split_fields(line);
        std::vector<std::size_t> candidates;
        for (std::size_t f = 0; f < fields.size(); ++f) {
          if (is_number(fields[f]) || is_hex64(fields[f])) candidates.push_back(f);
        }
        const bool detectable = !candidates.empty();
        const std::size_t target =
            detectable ? candidates[rng_.uniform_below(candidates.size())]
                       : rng_.uniform_below(fields.size());
        std::string& field = fields[target];
        if (field.empty()) field = "x";
        else field[rng_.uniform_below(field.size())] = 'x';
        const std::size_t out_line = out.size() + 1;
        out.push_back(join_fields(fields));
        log.faults.push_back({FaultKind::kCorruptField, dst, out_line,
                              "field " + std::to_string(target) +
                                  " made unparseable",
                              detectable, 0, 0});
        break;
      }
      case FaultKind::kDropRow: {
        log.faults.push_back({FaultKind::kDropRow, dst, out.size() + 1,
                              "row dropped", false, 0, 0});
        break;
      }
      case FaultKind::kDuplicateRow: {
        out.push_back(line);
        const std::size_t out_line = out.size() + 1;
        out.push_back(line);
        log.faults.push_back({FaultKind::kDuplicateRow, dst, out_line,
                              "row duplicated", false, 0, 0});
        break;
      }
      case FaultKind::kSwapRows: {
        if (i + 1 >= lines->size()) {  // no successor to swap with
          out.push_back(line);
          break;
        }
        const std::size_t out_line = out.size() + 1;
        out.push_back((*lines)[i + 1]);
        out.push_back(line);
        ++i;  // the successor was consumed
        log.faults.push_back({FaultKind::kSwapRows, dst, out_line,
                              "adjacent rows swapped", false, 0, 0});
        break;
      }
      case FaultKind::kTruncateFile:
      case FaultKind::kDeleteSnapshotWindow:
      case FaultKind::kCorruptSection:
        out.push_back(line);  // not row faults; unreachable via row_kinds
        break;
    }
  }

  bool final_newline = true;
  if (options.truncate_tail && out.size() > 1) {
    const std::size_t cut = 1 + rng_.uniform_below(out.size() - 1);
    std::string& last = out[cut];
    const std::size_t keep =
        last.size() > 1 ? 1 + rng_.uniform_below(last.size() - 1) : 0;
    last.resize(keep);
    out.resize(cut + 1);
    final_newline = false;
    log.faults.push_back({FaultKind::kTruncateFile, dst, cut + 1,
                          "file cut mid-record", false, 0, 0});
  }

  return write_lines(dst, out, final_newline);
}

bool FaultInjector::delete_snapshot_window(const std::string& src,
                                           const std::string& dst, SimTime width,
                                           InjectionLog& log) {
  const auto lines = read_lines(src);
  if (!lines || lines->size() < 5) return false;  // header + >= 4 rows

  std::vector<SimTime> times;
  times.reserve(lines->size() - 1);
  for (std::size_t i = 1; i < lines->size(); ++i) {
    times.push_back(std::strtoll((*lines)[i].c_str(), nullptr, 10));
  }

  // Pick a window start that leaves at least one row on each side.
  const std::size_t n = times.size();
  const std::size_t start = 1 + rng_.uniform_below(n / 2);
  std::size_t end = start;  // rows [start, end) are removed
  while (end < n - 1 && times[end] < times[start] + width) ++end;

  std::vector<std::string> out;
  out.reserve(lines->size());
  out.push_back((*lines)[0]);
  for (std::size_t i = 0; i < n; ++i) {
    if (i >= start && i < end) continue;
    out.push_back((*lines)[i + 1]);
  }
  log.faults.push_back({FaultKind::kDeleteSnapshotWindow, dst, start + 2,
                        std::to_string(end - start) + " snapshot row(s) deleted",
                        false, times[start - 1], times[end]});
  return write_lines(dst, out);
}

bool FaultInjector::inject_cnb_file(const std::string& src,
                                    const std::string& dst,
                                    const FaultOptions& options,
                                    InjectionLog& log) {
  const auto info = io::inspect_cnb(src);
  if (!info) return false;

  std::ifstream in(src, std::ios::binary);
  if (!in) return false;
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());

  // Directory indices of sections a byte flip can land in.
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < info->sections.size(); ++i) {
    const io::CnbSectionInfo& s = info->sections[i];
    if (s.byte_size > 0 && s.offset + s.byte_size <= bytes.size()) {
      candidates.push_back(i);
    }
  }

  if (options.torn_write && !candidates.empty()) {
    // A torn write, not byte flips: pick one section, cut it at an
    // interior offset, and either drop the tail (truncate) or zero it
    // to the section end (a partial page flush). Both leave a file a
    // crashed cnconvert/checkpoint writer could actually have produced.
    const std::size_t dir_index = candidates[rng_.uniform_below(candidates.size())];
    const io::CnbSectionInfo& s = info->sections[dir_index];
    // Tear strictly inside the payload so at least one byte survives and
    // at least one byte is lost.
    const std::uint64_t cut_in_section =
        s.byte_size <= 1 ? 0 : 1 + rng_.uniform_below(s.byte_size - 1);
    std::uint64_t cut = s.offset + cut_in_section;
    bool truncate = rng_.uniform_below(2) == 0;
    if (!truncate) {
      // Zero-filling a tail that is already all zeros mutates nothing —
      // the fault would be invisible, breaking the `detectable` promise.
      // Pull the cut back to cover the section's last nonzero byte, or
      // fall back to truncation when the whole candidate tail is zeros.
      std::uint64_t last_nonzero = 0;  // 0 = none found
      for (std::uint64_t i = s.offset + 1; i < s.offset + s.byte_size; ++i) {
        if (bytes[i] != 0) last_nonzero = i;
      }
      if (last_nonzero == 0) {
        truncate = true;
      } else if (cut > last_nonzero) {
        cut = last_nonzero;
      }
    }
    if (truncate) {
      bytes.resize(cut);
    } else {
      for (std::uint64_t i = cut; i < s.offset + s.byte_size; ++i) bytes[i] = 0;
    }
    log.faults.push_back(
        {FaultKind::kTornWrite, dst, dir_index + 1,
         std::string("section ") +
             io::to_string(static_cast<io::CnbSection>(s.id)) +
             (truncate ? " truncated at file offset " : " zero-torn from file offset ") +
             std::to_string(cut),
         true, 0, 0});

    std::ofstream torn_out(dst, std::ios::binary | std::ios::trunc);
    if (!torn_out) return false;
    torn_out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    torn_out.flush();
    return torn_out.good();
  }

  std::size_t flips = options.cnb_sections;
  if (flips > candidates.size()) flips = candidates.size();
  for (std::size_t f = 0; f < flips; ++f) {
    // Draw without replacement so each fault hits a distinct section.
    const std::size_t pick = rng_.uniform_below(candidates.size());
    const std::size_t dir_index = candidates[pick];
    candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(pick));

    const io::CnbSectionInfo& s = info->sections[dir_index];
    const std::uint64_t at = s.offset + rng_.uniform_below(s.byte_size);
    bytes[at] = static_cast<char>(
        static_cast<unsigned char>(bytes[at]) ^
        static_cast<unsigned char>(1 + rng_.uniform_below(255)));
    log.faults.push_back(
        {FaultKind::kCorruptSection, dst, dir_index + 1,
         std::string("section ") +
             io::to_string(static_cast<io::CnbSection>(s.id)) +
             " payload byte flipped at file offset " + std::to_string(at),
         true, 0, 0});
  }

  if (options.truncate_tail && bytes.size() > io::kCnbHeaderBytes) {
    // Cut somewhere past the header so the defect reads as a truncated
    // payload, not a missing directory.
    const std::size_t keep =
        io::kCnbHeaderBytes +
        rng_.uniform_below(bytes.size() - io::kCnbHeaderBytes);
    bytes.resize(keep);
    log.faults.push_back({FaultKind::kTruncateFile, dst, 0,
                          "file cut mid-section", false, 0, 0});
  }

  std::ofstream out(dst, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  return out.good();
}

InjectionLog FaultInjector::inject_dataset(const std::string& src_dir,
                                           const std::string& dst_dir,
                                           const FaultOptions& options) {
  InjectionLog log;
  std::error_code ec;
  std::filesystem::create_directories(dst_dir, ec);

  // Fixed file order keeps the fault sequence deterministic per seed.
  for (const char* name :
       {"blocks.csv", "txs.csv", "inputs.csv", "outputs.csv", "first_seen.csv"}) {
    const std::string src = src_dir + "/" + name;
    if (!std::filesystem::exists(src, ec)) continue;
    inject_file(src, dst_dir + "/" + name, options, log);
  }

  const std::string snap_src = src_dir + "/snapshots.csv";
  if (std::filesystem::exists(snap_src, ec)) {
    const std::string snap_dst = dst_dir + "/snapshots.csv";
    if (options.snapshot_gaps == 0) {
      std::filesystem::copy_file(snap_src, snap_dst,
                                 std::filesystem::copy_options::overwrite_existing,
                                 ec);
    } else {
      std::string cur = snap_src;
      for (std::size_t g = 0; g < options.snapshot_gaps; ++g) {
        if (!delete_snapshot_window(cur, snap_dst, options.gap_width, log)) break;
        cur = snap_dst;
      }
    }
  }
  return log;
}

}  // namespace cn::testing

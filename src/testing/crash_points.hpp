// Kill-point injection for crash-safety testing.
//
// The daemon's headline invariant — SIGKILL at any point, then restart,
// converges to a byte-identical report — is only testable if the "any
// point" can be chosen precisely. A crash point is a named site in
// production code (e.g. "daemon.apply", "checkpoint.pre_rename"); the
// chaos harness arms one via the CN_CRASH_AT environment variable and
// the process dies with _exit(137) — no destructors, no flushes, the
// same observable effect as SIGKILL — on the N-th time execution passes
// that site.
//
//   CN_CRASH_AT="daemon.apply:57"          die on the 57th applied event
//   CN_CRASH_AT="checkpoint.pre_rename:2"  die just before the 2nd
//                                          checkpoint rename
//
// Multiple points may be armed, comma-separated. Unarmed builds/runs pay
// one branch on a cached pointer per site. Instrumentation lives in
// cn::testing so production layers depend on it explicitly — the sites
// themselves are part of the daemon's tested surface.
#pragma once

#include <cstdint>
#include <string_view>

namespace cn::testing {

/// Parses CN_CRASH_AT and arms the registry. Called lazily by the first
/// crash_point() hit; exposed for tests that set the variable after
/// startup (tests must call rearm_crash_points_for_test()).
void arm_crash_points_from_env();

/// Marks a crash site. When CN_CRASH_AT armed @p name with countdown N,
/// the N-th call to this function with that name terminates the process
/// via _exit(137). Thread-safe; sites in unarmed processes cost one
/// atomic load.
void crash_point(std::string_view name);

/// Number of times @p name was passed (armed or not) since process
/// start — lets tests assert a site is actually on the path they think
/// it is.
std::uint64_t crash_point_hits(std::string_view name);

/// Drops all armed points and counters, then re-reads CN_CRASH_AT.
/// Tests only.
void rearm_crash_points_for_test();

}  // namespace cn::testing

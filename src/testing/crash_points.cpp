#include "testing/crash_points.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace cn::testing {

namespace {

struct PointState {
  // Remaining passes before the process dies; <0 = not armed, counting
  // only.
  std::atomic<std::int64_t> countdown{-1};
  std::atomic<std::uint64_t> hits{0};
};

struct Registry {
  std::mutex mu;
  // Pointers are stable across rehash (node-based map) — crash_point()
  // caches the PointState* per call site lookup.
  std::unordered_map<std::string, PointState> points;
  bool armed_from_env = false;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: usable during exit
  return *r;
}

void parse_and_arm(const char* spec) {
  if (spec == nullptr || *spec == '\0') return;
  Registry& r = registry();
  std::string s(spec);
  std::size_t pos = 0;
  while (pos <= s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    const std::string entry = s.substr(pos, comma - pos);
    pos = comma + 1;
    const std::size_t colon = entry.rfind(':');
    if (colon == std::string::npos || colon == 0) continue;
    const std::string name = entry.substr(0, colon);
    const long long count = std::strtoll(entry.c_str() + colon + 1, nullptr, 10);
    if (count <= 0) continue;
    r.points[name].countdown.store(count, std::memory_order_relaxed);
  }
}

}  // namespace

void arm_crash_points_from_env() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  if (r.armed_from_env) return;
  r.armed_from_env = true;
  parse_and_arm(std::getenv("CN_CRASH_AT"));
}

void crash_point(std::string_view name) {
  arm_crash_points_from_env();
  Registry& r = registry();
  PointState* state = nullptr;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    state = &r.points[std::string(name)];
  }
  state->hits.fetch_add(1, std::memory_order_relaxed);
  // Not armed (the overwhelmingly common case): one relaxed load.
  if (state->countdown.load(std::memory_order_relaxed) < 0) return;
  if (state->countdown.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Die exactly like SIGKILL would: no atexit handlers, no stream
    // flushes, no destructors. 137 = 128 + SIGKILL, the exit code a
    // shell reports for a killed child, so harnesses treat both alike.
    _exit(137);
  }
}

std::uint64_t crash_point_hits(std::string_view name) {
  arm_crash_points_from_env();
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const auto it = r.points.find(std::string(name));
  return it == r.points.end() ? 0 : it->second.hits.load(std::memory_order_relaxed);
}

void rearm_crash_points_for_test() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.points.clear();
  r.armed_from_env = true;
  parse_and_arm(std::getenv("CN_CRASH_AT"));
}

}  // namespace cn::testing

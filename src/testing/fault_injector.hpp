// Deterministic fault injection for exported data sets.
//
// The paper's pipeline had to survive a lossy capture (truncated dumps,
// node restarts, garbled rows); this harness reproduces those failure
// modes on demand so the importers' strict/lenient guarantees are
// testable as properties instead of anecdotes. Given a seed, the
// injector copies an exported data set while mutating it — corrupted
// fields, dropped/duplicated/swapped rows, a truncated tail, deleted
// snapshot windows — and returns a log of every fault with the exact
// output file and line it landed on. The same seed always produces the
// same faults.
//
// Fault kinds and their strict-import visibility:
//   kCorruptField   a numeric/hex field becomes unparseable — always
//                   detectable; the log line is the line a strict import
//                   must pinpoint.
//   kDropRow        a row vanishes (tx_count mismatches surface it for
//                   txs.csv; silent for relation-only files).
//   kDuplicateRow   a row appears twice (duplicate-key defects).
//   kSwapRows       two adjacent rows trade places (order defects).
//   kTruncateFile   the file ends mid-record (partial-row defects).
//   kDeleteSnapshotWindow  an observer outage: snapshot rows inside a
//                   time window disappear. Invisible to the importer by
//                   design — the data-quality layer must catch it.
//   kCorruptSection a CNB1 binary section's payload bytes are flipped
//                   (inject_cnb_file) — detectable; the per-section
//                   checksum fails and a strict io::read_cnb pinpoints
//                   the logged directory index.
//   kTornWrite      a crashed writer's partial flush: from a random
//                   offset inside one CNB1 section, the file is either
//                   truncated (tail lost) or zero-filled to the section
//                   end (pages never made it to disk). Detectable: the
//                   section checksum (or the file length) can no longer
//                   match, so a strict load reports a typed defect and a
//                   lenient load drops the poisoned group.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/time.hpp"

namespace cn::testing {

enum class FaultKind {
  kCorruptField,
  kDropRow,
  kDuplicateRow,
  kSwapRows,
  kTruncateFile,
  kDeleteSnapshotWindow,
  kCorruptSection,
  kTornWrite,
};

const char* to_string(FaultKind kind);

struct InjectedFault {
  FaultKind kind{};
  std::string file;      ///< path of the mutated output file
  std::size_t line = 0;  ///< 1-based line in the OUTPUT file (0 = file level).
                         ///< For kCorruptSection: the 1-based CNB1
                         ///< section-directory index, matching LoadError::line.
  std::string detail;
  /// True when the fault is guaranteed to abort a strict import at
  /// exactly `line` (kCorruptField and kCorruptSection faults make this
  /// promise).
  bool detectable = false;
  SimTime gap_from = 0;  ///< kDeleteSnapshotWindow: last time before the gap
  SimTime gap_to = 0;    ///< kDeleteSnapshotWindow: first time after the gap
};

struct InjectionLog {
  std::uint64_t seed = 0;
  std::vector<InjectedFault> faults;

  std::size_t count(FaultKind kind) const noexcept;
  /// Faults guaranteed to abort a strict import, in injection order.
  std::vector<const InjectedFault*> detectable() const;
};

struct FaultOptions {
  /// Per-data-row probability of receiving a row fault.
  double row_corruption_rate = 0.01;
  /// Row-fault kinds to draw from (uniformly). kTruncateFile and
  /// kDeleteSnapshotWindow are not row faults and are ignored here.
  std::vector<FaultKind> kinds = {FaultKind::kCorruptField, FaultKind::kDropRow,
                                  FaultKind::kDuplicateRow, FaultKind::kSwapRows};
  /// Additionally cut the file mid-record at a random data row.
  bool truncate_tail = false;
  /// Observer-outage windows to delete from snapshots.csv
  /// (inject_dataset only).
  std::size_t snapshot_gaps = 0;
  /// Width of each deleted window, in the series' time unit.
  SimTime gap_width = 120;
  /// Distinct CNB1 sections to corrupt (inject_cnb_file only); clamped
  /// to the number of non-empty sections in the file.
  std::size_t cnb_sections = 1;
  /// Torn-write mode (inject_cnb_file only): emulate a writer killed
  /// mid-flush by cutting or zero-garbling one section from a random
  /// interior offset. When set, cnb_sections byte flips are skipped —
  /// the torn tail is the injected fault.
  bool torn_write = false;
};

class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed);

  /// Copies the data set at @p src_dir into @p dst_dir (created),
  /// applying row faults to blocks/txs/inputs/outputs/first_seen and
  /// deleting options.snapshot_gaps windows from snapshots.csv. Files
  /// absent from the source are skipped. Deterministic per seed.
  InjectionLog inject_dataset(const std::string& src_dir,
                              const std::string& dst_dir,
                              const FaultOptions& options = {});

  /// Mutates a single CSV file from @p src to @p dst, appending to
  /// @p log. Returns false when the source could not be read.
  bool inject_file(const std::string& src, const std::string& dst,
                   const FaultOptions& options, InjectionLog& log);

  /// Deletes snapshot rows whose time falls in [window_start,
  /// window_start + width), where window_start is drawn from the file's
  /// own time range. Appends a kDeleteSnapshotWindow fault recording the
  /// surviving boundary times. Returns false when the source could not
  /// be read or has too few rows to cut.
  bool delete_snapshot_window(const std::string& src, const std::string& dst,
                              SimTime width, InjectionLog& log);

  /// Copies the CNB1 file at @p src to @p dst while flipping one payload
  /// byte in each of options.cnb_sections distinct non-empty sections
  /// (kCorruptSection faults whose `line` is the 1-based directory index
  /// a strict io::read_cnb reports), then optionally cutting the file
  /// mid-section when options.truncate_tail is set (kTruncateFile).
  /// With options.torn_write, instead emulates a partial flush: one
  /// section is torn at a random interior offset — the file is either
  /// truncated there or zero-filled to the section's end (kTornWrite,
  /// `line` = 1-based directory index).
  /// Returns false when @p src is not a readable CNB1 file or the write
  /// failed. Deterministic per seed.
  bool inject_cnb_file(const std::string& src, const std::string& dst,
                       const FaultOptions& options, InjectionLog& log);

 private:
  Rng rng_;
};

}  // namespace cn::testing

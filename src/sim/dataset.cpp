#include "sim/dataset.hpp"

#include "util/assert.hpp"

namespace cn::sim {

namespace {

PoolSpec pool(std::string name, double share) {
  PoolSpec spec;
  spec.name = std::move(name);
  spec.hash_share = share;
  return spec;
}

PoolSpec anonymous_pool(double share) {
  PoolSpec spec;
  spec.name = "(unknown)";
  spec.hash_share = share;
  spec.anonymous = true;
  return spec;
}

/// Behaviours the paper attributes to 2019-2020 pools; applied to every
/// data set in which the pool appears.
void apply_paper_behaviours(std::vector<PoolSpec>& pools) {
  for (PoolSpec& p : pools) {
    // §5.2 / Table 2 — selfish acceleration of own-wallet transactions.
    if (p.name == "F2Pool" || p.name == "ViaBTC" || p.name == "1THash&58Coin" ||
        p.name == "SlushPool") {
      p.selfish = true;
    }
    // Table 2 — ViaBTC collusively accelerates partners' transactions.
    if (p.name == "ViaBTC") {
      p.accelerates_for = {"1THash&58Coin", "SlushPool"};
    }
    // §5.4 — pools selling acceleration services.
    if (p.name == "BTC.com" || p.name == "AntPool" || p.name == "ViaBTC" ||
        p.name == "F2Pool" || p.name == "Poolin") {
      p.offers_acceleration = true;
      // Table 4's non-accelerated SPPE>=99 placements: pools that run a
      // prioritization pipeline also bump the odd transaction outside it.
      p.courtesy_boost_per_block = 0.35;
    }
    // §4.2.3 — sporadic below-floor inclusion (F2Pool >> ViaBTC >> BTC.com).
    if (p.name == "F2Pool") p.tolerates_low_fee = true;
    if (p.name == "ViaBTC") p.tolerates_low_fee = true;
    if (p.name == "BTC.com") p.tolerates_low_fee = true;
    // Self-interest tx volume is not proportional to hash share: Table 2's
    // c-block counts (SlushPool y=1343 at 3.75% share, ViaBTC y=720 at
    // 6.76%) imply these pools move their own coins far more often.
    if (p.name == "SlushPool") p.self_tx_weight = 5.0;
    if (p.name == "ViaBTC") p.self_tx_weight = 2.5;
    if (p.name == "1THash&58Coin") p.self_tx_weight = 2.0;
    // Reward-wallet counts, scaled ~5x down from Figure 8a (SlushPool
    // used 56 distinct wallets, Poolin 23, most pools a handful).
    if (p.name == "SlushPool") p.wallet_count = 11;
    if (p.name == "Poolin") p.wallet_count = 6;
    if (p.name == "F2Pool") p.wallet_count = 5;
    if (p.name == "BTC.com") p.wallet_count = 5;
    if (p.name == "AntPool") p.wallet_count = 4;
    if (p.name == "ViaBTC") p.wallet_count = 4;
  }
}

}  // namespace

std::vector<PoolSpec> paper_pools_a() {
  // Figure 2a: data set A (Feb-Mar 2019), top-20 ≈ 94.97% of blocks.
  std::vector<PoolSpec> pools = {
      pool("BTC.com", 17.18),  pool("AntPool", 12.79),  pool("F2Pool", 11.29),
      pool("Poolin", 11.03),   pool("SlushPool", 8.94), pool("ViaBTC", 7.60),
      pool("BTC.TOP", 6.20),   pool("Huobi", 5.40),     pool("DPool", 3.10),
      pool("BitFury", 2.90),   pool("Bitcoin.com", 1.80), pool("SpiderPool", 1.70),
      pool("NovaBlock", 1.30), pool("BytePool", 1.00),  pool("KanoPool", 0.80),
      pool("Sigmapool", 0.70), pool("TMSPool", 0.60),   pool("WAYI.CN", 0.50),
      pool("Okex", 0.40),      pool("Binance Pool", 0.34),
  };
  pools.push_back(anonymous_pool(5.03));
  apply_paper_behaviours(pools);
  return pools;
}

std::vector<PoolSpec> paper_pools_b() {
  // Figure 2b: data set B (June 2019), top-20 ≈ 93.52%.
  std::vector<PoolSpec> pools = {
      pool("BTC.com", 19.67),  pool("AntPool", 12.77),  pool("F2Pool", 11.57),
      pool("SlushPool", 9.69), pool("Poolin", 9.58),    pool("ViaBTC", 7.30),
      pool("BTC.TOP", 5.90),   pool("Huobi", 5.20),     pool("DPool", 2.80),
      pool("BitFury", 2.60),   pool("Bitcoin.com", 1.60), pool("SpiderPool", 1.50),
      pool("NovaBlock", 1.20), pool("BytePool", 0.90),  pool("KanoPool", 0.70),
      pool("Sigmapool", 0.60), pool("TMSPool", 0.50),   pool("WAYI.CN", 0.40),
      pool("Okex", 0.30),      pool("Binance Pool", 0.24),
  };
  pools.push_back(anonymous_pool(6.48));
  apply_paper_behaviours(pools);
  return pools;
}

std::vector<PoolSpec> paper_pools_c() {
  // Figure 2c / Tables 2-3: data set C (2020), top-20 ≈ 98.08%,
  // 1.32% unidentified.
  std::vector<PoolSpec> pools = {
      pool("F2Pool", 17.53),   pool("Poolin", 14.80),  pool("BTC.com", 11.99),
      pool("AntPool", 10.96),  pool("Huobi", 7.00),    pool("ViaBTC", 6.76),
      pool("1THash&58Coin", 6.11), pool("Okex", 5.80), pool("Binance Pool", 5.00),
      pool("SlushPool", 3.75), pool("Lubian.com", 2.20), pool("BTC.TOP", 1.70),
      pool("BitFury", 1.20),   pool("NovaBlock", 1.00), pool("SpiderPool", 0.90),
      pool("BytePool", 0.70),  pool("TMSPool", 0.60),  pool("WAYI.CN", 0.50),
      pool("Bitcoin.com", 0.45), pool("DPool", 0.35),
  };
  pools.push_back(anonymous_pool(1.32));
  apply_paper_behaviours(pools);
  return pools;
}

double rate_for_utilization(const EngineConfig& config, double utilization) {
  CN_ASSERT(utilization > 0.0);
  const double capacity_vb_per_s =
      static_cast<double>(config.max_block_vsize - btc::kCoinbaseVsize) /
      config.mean_block_interval_s;
  return utilization * capacity_vb_per_s / config.workload.mean_tx_vsize;
}

void set_all_builders(EngineConfig& config, BuilderKind kind) {
  for (PoolSpec& p : config.pools) p.builder = kind;
}

EngineConfig dataset_config(DatasetKind kind, std::uint64_t seed, double scale) {
  CN_ASSERT(scale > 0.0);
  EngineConfig config;
  config.seed = seed;
  config.max_block_vsize = 100'000;  // scaled block budget (vB)

  switch (kind) {
    case DatasetKind::kA: {
      config.duration = static_cast<SimTime>(3.5 * kDay * scale);
      config.genesis_height = 563'833;
      config.pools = paper_pools_a();
      config.observer_min_relay_sat_per_vb = 1;
      config.empty_block_fraction = 0.012;  // 38 / 3119
      config.workload.base_tx_per_second = rate_for_utilization(config, 0.80);
      config.workload.diurnal_amplitude = 0.35;
      // Demand spikes (price moves, batch sweeps) that keep the queue from
      // fully draining between diurnal peaks.
      config.workload.bursts = {
          BurstEvent{static_cast<SimTime>(0.8 * kDay * scale), 8 * kHour, 1.35},
          BurstEvent{static_cast<SimTime>(2.2 * kDay * scale), 8 * kHour, 1.5},
      };
      break;
    }
    case DatasetKind::kB: {
      config.duration = static_cast<SimTime>(4.0 * kDay * scale);
      config.genesis_height = 578'717;
      config.pools = paper_pools_b();
      config.observer_min_relay_sat_per_vb = 0;  // permissive node
      config.empty_block_fraction = 0.004;       // 18 / 4520
      config.workload.base_tx_per_second = rate_for_utilization(config, 0.82);
      config.workload.diurnal_amplitude = 0.30;
      // June 2019 was burst-driven (Libra announcement, USD news — Fig 9):
      // repeated surges keep the Mempool congested ~92% of the window.
      config.workload.bursts = {
          BurstEvent{static_cast<SimTime>(0.6 * kDay * scale), 10 * kHour, 1.5},
          BurstEvent{static_cast<SimTime>(1.5 * kDay * scale), 8 * kHour, 1.45},
          BurstEvent{static_cast<SimTime>(2.5 * kDay * scale), 10 * kHour, 1.8},
          BurstEvent{static_cast<SimTime>(3.2 * kDay * scale), 8 * kHour, 2.2},
      };
      config.workload.below_floor_fraction = 0.0025;  // visible at floor 0
      break;
    }
    case DatasetKind::kC: {
      config.duration = static_cast<SimTime>(10.0 * kDay * scale);
      config.genesis_height = 610'691;
      config.pools = paper_pools_c();
      config.observer_min_relay_sat_per_vb = 1;
      config.empty_block_fraction = 0.0045;  // 240 / 53214
      config.workload.base_tx_per_second = rate_for_utilization(config, 0.80);
      config.workload.diurnal_amplitude = 0.38;
      // The behavioural audit needs ample pool-wallet transactions
      // (Fig 8: ~12k inferred over the year).
      config.workload.self_interest_per_block = 0.5;
      config.workload.bursts = {
          BurstEvent{static_cast<SimTime>(1.5 * kDay * scale), 10 * kHour, 1.4},
          BurstEvent{static_cast<SimTime>(4.0 * kDay * scale), 8 * kHour, 1.6},
          BurstEvent{static_cast<SimTime>(8.0 * kDay * scale), 10 * kHour, 1.5},
      };
      // The Twitter-scam window (July 14 - Aug 9, 2020 in the paper) maps
      // to a two-day slice in the middle of the run.
      ScamConfig scam;
      scam.start = static_cast<SimTime>(5.5 * kDay * scale);
      scam.end = static_cast<SimTime>(7.5 * kDay * scale);
      scam.txs_per_hour = 1.0;
      config.workload.scam = scam;
      break;
    }
  }
  return config;
}

SimResult make_dataset(DatasetKind kind, std::uint64_t seed, double scale) {
  Engine engine(dataset_config(kind, seed, scale));
  return engine.run();
}

}  // namespace cn::sim

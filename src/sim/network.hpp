// P2P propagation model.
//
// Transactions broadcast at time t reach each node (pool or observer)
// after a node-specific delay. Delays are derived deterministically from
// (txid, node label) so replay never depends on event interleaving; the
// distribution is a small floor plus an exponential tail, matching
// measured Bitcoin gossip latencies of a few seconds. These per-node skews
// are one real source of the pairwise "violations" of §4.2.1 that the
// epsilon-tightened test then filters out.
#pragma once

#include <string_view>

#include "btc/txid.hpp"
#include "util/time.hpp"

namespace cn::sim {

struct PropagationModel {
  /// Minimum gossip latency (validation + one hop).
  double floor_seconds = 0.2;
  /// Mean of the exponential tail on top of the floor.
  double mean_extra_seconds = 3.0;
  /// Hard cap: a node that has not heard of a tx after this long gets it
  /// now (relay retries, compact-block recovery).
  double cap_seconds = 30.0;

  /// Delay (whole seconds, >= 0) until @p node sees @p tx.
  SimTime delay(const btc::Txid& tx, std::string_view node) const noexcept;

  /// Absolute arrival time at @p node of a tx broadcast at @p broadcast.
  SimTime arrival(const btc::Txid& tx, std::string_view node,
                  SimTime broadcast) const noexcept;
};

/// Node label used for the observer in arrival computations.
inline constexpr std::string_view kObserverNode = "observer";

}  // namespace cn::sim

#include "sim/pool.hpp"


#include <utility>
#include "util/assert.hpp"

namespace cn::sim {

MiningPool::MiningPool(const PoolSpec& spec) : spec_(spec) {
  CN_ASSERT(spec_.wallet_count > 0);
  wallets_.reserve(spec_.wallet_count);
  for (std::size_t i = 0; i < spec_.wallet_count; ++i) {
    const btc::Address a =
        btc::Address::derive(spec_.name + "/wallet/" + std::to_string(i));
    wallets_.push_back(a);
    wallet_set_.insert(a);
  }

  if (spec_.selfish) policies_.push_back(std::make_unique<SelfInterestPolicy>());
  if (spec_.evasion_theta >= 0.0) {
    policies_.push_back(
        std::make_unique<EvasiveSelfInterestPolicy>(spec_.evasion_theta));
  }
  if (spec_.withhold_delay_s > 0.0) {
    policies_.push_back(
        std::make_unique<WithholdingPolicy>(spec_.withhold_delay_s));
  }
  if (spec_.fair_queue) policies_.push_back(std::make_unique<FairQueuePolicy>());
  if (!spec_.accelerates_for.empty())
    policies_.push_back(std::make_unique<CollusionPolicy>());
  if (spec_.offers_acceleration)
    policies_.push_back(std::make_unique<DarkFeePolicy>());
  if (spec_.courtesy_boost_per_block > 0.0) {
    policies_.push_back(
        std::make_unique<CourtesyBoostPolicy>(spec_.courtesy_boost_per_block));
  }
  if (spec_.tolerates_low_fee)
    policies_.push_back(std::make_unique<LowFeeTolerancePolicy>());
  if (!spec_.censored_wallets.empty()) {
    std::unordered_set<btc::Address> blacklist(spec_.censored_wallets.begin(),
                                               spec_.censored_wallets.end());
    policies_.push_back(std::make_unique<CensorshipPolicy>(std::move(blacklist)));
  }
}

std::string MiningPool::coinbase_tag() const {
  if (spec_.anonymous) return "";
  return btc::conventional_marker(spec_.name);
}

btc::Address MiningPool::next_reward_wallet() {
  const btc::Address a = wallets_[next_wallet_ % wallets_.size()];
  ++next_wallet_;
  return a;
}

node::BlockTemplate MiningPool::build_template(
    const node::Mempool& mempool, const PolicyContext& ctx,
    std::unordered_set<btc::Txid> base_exclude) const {
  if (spec_.builder == BuilderKind::kLegacyPriority) {
    // The legacy builder predates all the audited misbehaviours; policies
    // other than exclusion do not apply to it.
    node::LegacyTemplateOptions legacy;
    legacy.max_vsize = ctx.max_template_vsize;
    return node::build_legacy_template(mempool, ctx.now, legacy);
  }

  node::TemplateOptions options;
  options.max_vsize = ctx.max_template_vsize;
  options.exclude = std::move(base_exclude);
  options.age_weight_per_hour = spec_.age_weight_per_hour;
  options.now = ctx.now;
  if (spec_.min_rate_sat_per_vb > 0) {
    options.min_rate = btc::FeeRate::from_sat_per_vb(spec_.min_rate_sat_per_vb);
  }
  for (const auto& policy : policies_) policy->apply(options, mempool, ctx);
  return node::build_template(mempool, options);
}

}  // namespace cn::sim

#include "sim/shard.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "util/assert.hpp"

namespace cn::sim {

namespace {

/// Workload config for one lane: 1/S of the global arrival rate. All
/// other knobs (fee tiers, size distributions, special-class rates) are
/// shared — rates expressed "per block" or "per hour" are converted to
/// per-issue probabilities against the *global* rate at issue time.
WorkloadConfig shard_workload(const EngineConfig& config,
                              std::uint32_t shard_count) {
  WorkloadConfig w = config.workload;
  w.base_tx_per_second /= static_cast<double>(shard_count);
  return w;
}

Rng shard_rng(std::uint64_t seed, std::uint32_t id) {
  // Stable derivation: seed -> "shard/<id>" stream, independent of thread
  // count and of every serial-engine stream ("workload"/"blocks"/"misc").
  return Rng(seed).fork("shard/" + std::to_string(id));
}

}  // namespace

ShardLane::ShardLane(std::uint32_t id, const EngineConfig& config,
                     const std::vector<MiningPool>* pools,
                     const std::vector<double>* payout_weights,
                     btc::Address scam_address, std::uint32_t shard_count)
    : id_(id),
      config_(&config),
      pools_(pools),
      payout_weights_(payout_weights),
      scam_address_(scam_address),
      shard_count_(static_cast<double>(shard_count)),
      rng_(shard_rng(config.seed, id)),
      workload_(shard_workload(config, shard_count),
                shard_rng(config.seed, id).fork("txgen"),
                /*nonce_base=*/(std::uint64_t{id} + 1) << 48) {}

void ShardLane::generate(SimTime t0, SimTime t1, const WindowContext& ctx,
                         const node::Mempool& canonical,
                         std::vector<ShardMsg>& out) {
  if (!primed_) {
    next_issue_ = workload_.next_arrival(0);
    primed_ = true;
  }
  (void)t0;
  while (next_issue_ < t1) {
    const SimTime now = next_issue_;
    emit(now, ctx, canonical, out);
    next_issue_ = workload_.next_arrival(now);
  }
}

void ShardLane::note_candidate(const btc::Txid& id) {
  // Per-shard caps mirror the serial engine's global 512/256 bounds,
  // scaled down so the aggregate candidate population stays comparable.
  const std::size_t cpfp_cap = std::max<std::size_t>(
      512 / static_cast<std::size_t>(shard_count_), 16);
  const std::size_t rbf_cap = std::max<std::size_t>(
      256 / static_cast<std::size_t>(shard_count_), 8);
  if (cpfp_candidates_.size() < cpfp_cap) cpfp_candidates_.push_back(id);
  if (rbf_candidates_.size() < rbf_cap) rbf_candidates_.push_back(id);
}

const btc::Transaction* ShardLane::pick_cpfp_parent(
    const node::Mempool& canonical) {
  while (!cpfp_candidates_.empty()) {
    const std::size_t idx =
        cpfp_candidates_.size() <= 1
            ? 0
            : static_cast<std::size_t>(rng_.uniform_below(
                  std::min<std::uint64_t>(cpfp_candidates_.size(), 8)));
    const btc::Txid id = cpfp_candidates_[idx];
    cpfp_candidates_.erase(cpfp_candidates_.begin() +
                           static_cast<std::ptrdiff_t>(idx));
    const node::MempoolEntry* entry = canonical.find(id);
    if (entry == nullptr) continue;  // mined or evicted since noted
    ++cpfp_picks_;
    return &entry->tx;
  }
  return nullptr;
}

const btc::Transaction* ShardLane::pick_rbf_original(
    const node::Mempool& canonical) {
  while (!rbf_candidates_.empty()) {
    const btc::Txid id = rbf_candidates_.front();
    rbf_candidates_.pop_front();
    const node::MempoolEntry* entry = canonical.find(id);
    if (entry != nullptr) return &entry->tx;
  }
  return nullptr;
}

void ShardLane::emit(SimTime now, const WindowContext& ctx,
                     const node::Mempool& canonical,
                     std::vector<ShardMsg>& out) {
  WorkloadContext wctx;
  wctx.rec_p25 = ctx.rec_p25;
  wctx.rec_p50 = ctx.rec_p50;
  wctx.rec_p75 = ctx.rec_p75;
  wctx.congestion = ctx.congestion;

  ShardMsg msg;
  msg.time = now;
  msg.shard = id_;
  msg.seq = seq_++;

  // Replace-by-fee branch: the user bumps one of their own stuck
  // transactions instead of issuing a new one. Liveness is checked
  // against the frozen window-start mempool; the (rare) case where the
  // original gets mined later in the same window models the real-network
  // race of a bump racing a block.
  if (rng_.chance(config_->workload.rbf_fraction)) {
    if (const btc::Transaction* original = pick_rbf_original(canonical)) {
      ++rbf_attempts_;
      msg.tx = workload_.make_rbf_replacement(now, *original, wctx);
      msg.is_rbf_bump = true;
      out.push_back(std::move(msg));
      return;
    }
  }

  // Special-class probabilities are per issue at the *global* rate (the
  // lane sees 1/S of the arrivals, so per-arrival probabilities are
  // unchanged from the serial engine).
  const double rate_now =
      std::max(workload_.rate_at(now) * shard_count_, 1e-9);
  const double p_self = config_->workload.self_interest_per_block /
                        (config_->mean_block_interval_s * rate_now);
  wctx.make_self_interest = rng_.chance(std::min(p_self, 0.5));
  if (wctx.make_self_interest) {
    const std::size_t pool_idx = rng_.weighted_index(*payout_weights_);
    const auto& wallets = (*pools_)[pool_idx].wallets();
    wctx.pool_wallet = wallets[rng_.uniform_below(wallets.size())];
  } else if (config_->workload.scam.has_value()) {
    const ScamConfig& scam = *config_->workload.scam;
    if (now >= scam.start && now < scam.end) {
      const double p_scam = scam.txs_per_hour / (3600.0 * rate_now);
      wctx.make_scam = rng_.chance(std::min(p_scam, 0.5));
      wctx.scam_address = scam_address_;
    }
  }
  if (!wctx.make_self_interest && !wctx.make_scam) {
    wctx.cpfp_parent = pick_cpfp_parent(canonical);
  }

  GeneratedTx generated = workload_.make_transaction(now, wctx);
  const bool ordinary = !generated.is_scam && !generated.is_self_interest &&
                        !generated.used_cpfp_parent;
  msg.is_scam = generated.is_scam;
  msg.wants_acceleration = generated.wants_acceleration;
  msg.low_fee_ordinary =
      ordinary && generated.tx.fee_rate().sat_per_vbyte() < ctx.rec_p50;
  msg.tx = std::move(generated.tx);
  out.push_back(std::move(msg));
}

void ObserverLane::apply(std::vector<ObserverOp>& ops) {
  for (ObserverOp& op : ops) {
    switch (op.kind) {
      case ObserverOp::Kind::kDeliver:
        if (!mined_recent_.contains(op.tx.id())) {
          observer_->on_transaction(std::move(op.tx), op.time);
        }
        break;
      case ObserverOp::Kind::kBlock:
        for (const btc::Txid& id : op.mined) {
          if (mined_recent_.insert(id).second) {
            mined_order_.emplace_back(op.time, id);
          }
        }
        observer_->on_block_txids(op.mined);
        // Deliveries trail broadcasts by the propagation cap (30 s), so
        // mined ids older than a minute can never gate a delivery again.
        while (!mined_order_.empty() &&
               mined_order_.front().first + 64 < op.time) {
          mined_recent_.erase(mined_order_.front().second);
          mined_order_.pop_front();
        }
        break;
      case ObserverOp::Kind::kSnapshot:
        observer_->record_snapshot(op.time);
        break;
    }
  }
}

}  // namespace cn::sim

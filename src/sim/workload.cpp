#include "sim/workload.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/assert.hpp"

namespace cn::sim {

WorkloadGenerator::WorkloadGenerator(WorkloadConfig config, Rng rng,
                                     std::uint64_t nonce_base)
    : config_(std::move(config)), rng_(rng), nonce_(nonce_base) {
  CN_ASSERT(config_.base_tx_per_second > 0.0);
  CN_ASSERT(config_.diurnal_amplitude >= 0.0 && config_.diurnal_amplitude < 1.0);
  CN_ASSERT(config_.urgent_fraction + config_.patient_fraction <= 1.0);
  user_addresses_.reserve(config_.user_address_count);
  for (std::size_t i = 0; i < config_.user_address_count; ++i)
    user_addresses_.push_back(btc::Address::derive("user/" + std::to_string(i)));
}

double WorkloadGenerator::rate_at(SimTime t) const noexcept {
  const double phase = 2.0 * std::numbers::pi * static_cast<double>(t) /
                       static_cast<double>(config_.diurnal_period);
  double rate = config_.base_tx_per_second *
                (1.0 + config_.diurnal_amplitude * std::sin(phase));
  for (const BurstEvent& b : config_.bursts) {
    if (t >= b.start && t < b.start + b.duration) rate *= b.rate_multiplier;
  }
  return rate;
}

double WorkloadGenerator::max_rate() const noexcept {
  double peak_multiplier = 1.0;
  for (const BurstEvent& b : config_.bursts)
    peak_multiplier = std::max(peak_multiplier, b.rate_multiplier);
  return config_.base_tx_per_second * (1.0 + config_.diurnal_amplitude) *
         peak_multiplier;
}

SimTime WorkloadGenerator::next_arrival(SimTime now) {
  // Thinning (Lewis & Shedler): propose at the peak rate, accept with
  // probability rate(t)/peak. An internal continuous clock carries the
  // fractional seconds across calls; rounding each gap to integer SimTime
  // would otherwise bias the realized rate ~20% low.
  const double peak = max_rate();
  double t = std::max(static_cast<double>(now), continuous_clock_);
  for (int guard = 0; guard < 1'000'000; ++guard) {
    t += rng_.exponential(peak);
    if (rng_.uniform01() * peak <= rate_at(static_cast<SimTime>(t))) {
      continuous_clock_ = t;
      // May equal `now` (several arrivals within one second); the event
      // queue orders equal-time events by sequence number.
      return static_cast<SimTime>(t);
    }
  }
  CN_ASSERT(false && "thinning failed to converge");
  return now + 1;
}

btc::Address WorkloadGenerator::random_user_address() {
  return user_addresses_[rng_.uniform_below(config_.user_address_count)];
}

namespace {

/// Bounded estimator feedback: how far the recent-block median deviates
/// from the normal anchor, damped by the blend exponent. Clamped so the
/// fee spiral can never run away.
double estimator_blend(const WorkloadConfig& config, double rec_p50) {
  const double ratio =
      std::clamp(rec_p50 / config.normal_anchor_sat_vb, 0.3, 3.0);
  return std::pow(ratio, config.estimator_blend_exponent);
}

}  // namespace

double WorkloadGenerator::fee_rate_target(const WorkloadContext& ctx) {
  const double level = static_cast<double>(ctx.congestion);
  const double blend = estimator_blend(config_, ctx.rec_p50);
  const double noise = rng_.lognormal(0.0, config_.fee_noise_sigma);

  const double tier = rng_.uniform01();
  double anchor, response;
  if (tier < config_.urgent_fraction) {
    anchor = config_.urgent_anchor_sat_vb;
    response = config_.congestion_fee_response;
  } else if (tier < config_.urgent_fraction + config_.patient_fraction) {
    anchor = config_.patient_anchor_sat_vb;
    response = 0.3 * config_.congestion_fee_response;
  } else {
    anchor = config_.normal_anchor_sat_vb;
    response = 0.8 * config_.congestion_fee_response;
  }
  return std::max(anchor * std::exp(response * level) * blend * noise, 1.0);
}

btc::Transaction WorkloadGenerator::make_rbf_replacement(
    SimTime now, const btc::Transaction& original, const WorkloadContext& ctx) {
  const double bump =
      rng_.uniform(config_.rbf_bump_min, config_.rbf_bump_max);
  const double old_rate = original.fee_rate().sat_per_vbyte();
  const double market = std::max(ctx.rec_p50, 1.0);
  const double new_rate = std::max(old_rate * bump, market) *
                          rng_.lognormal(0.0, 0.5 * config_.fee_noise_sigma);
  const auto new_fee = btc::Satoshi{std::max<std::int64_t>(
      static_cast<std::int64_t>(new_rate * original.vsize()),
      original.fee().value + 1)};  // BIP-125: strictly more absolute fee
  return btc::make_replacement(now, original, new_fee, ++nonce_);
}

GeneratedTx WorkloadGenerator::make_transaction(SimTime now,
                                                const WorkloadContext& ctx) {
  GeneratedTx out;

  // --- size ---
  const double mu =
      std::log(config_.mean_tx_vsize) - 0.5 * config_.vsize_sigma * config_.vsize_sigma;
  double size = rng_.lognormal(mu, config_.vsize_sigma);
  size = std::clamp(size, static_cast<double>(config_.min_tx_vsize),
                    static_cast<double>(config_.max_tx_vsize));
  const auto vsize = static_cast<std::uint32_t>(size);

  // --- value ---
  const double vmu = std::log(config_.mean_value_sat) -
                     0.5 * config_.value_sigma * config_.value_sigma;
  const double value_d = std::max(rng_.lognormal(vmu, config_.value_sigma), 1000.0);
  const btc::Satoshi value{static_cast<std::int64_t>(value_d)};

  // --- special classes (decided by the engine via ctx flags) ---
  if (ctx.make_scam) {
    // Victims rush: urgent-tier fee, payment to the scam wallet.
    const double level = static_cast<double>(ctx.congestion);
    const double rate = std::max(
        config_.urgent_anchor_sat_vb *
            std::exp(config_.congestion_fee_response * level) *
            estimator_blend(config_, ctx.rec_p50) *
            rng_.lognormal(0.0, config_.fee_noise_sigma),
        2.0);
    const btc::Satoshi fee{static_cast<std::int64_t>(rate * vsize)};
    out.tx = btc::make_payment(now, vsize, fee, random_user_address(),
                               ctx.scam_address, value, ++nonce_);
    out.is_scam = true;
    return out;
  }

  if (ctx.make_self_interest) {
    // Pool payout or deposit: large value, patient fee (these commit by
    // fee-rate slowly — unless a pool prioritizes them).
    const double rate = std::max(
        config_.patient_anchor_sat_vb * estimator_blend(config_, ctx.rec_p50) *
            rng_.lognormal(0.0, config_.fee_noise_sigma),
        1.0);
    const btc::Satoshi fee{static_cast<std::int64_t>(rate * vsize)};
    const btc::Satoshi big_value{value.value * 20};
    const bool outgoing = rng_.chance(0.7);  // payouts dominate deposits
    const btc::Address user = random_user_address();
    const btc::Address from = outgoing ? ctx.pool_wallet : user;
    const btc::Address to = outgoing ? user : ctx.pool_wallet;
    out.tx = btc::make_payment(now, vsize, fee, from, to, big_value, ++nonce_);
    out.is_self_interest = true;
    return out;
  }

  // --- below-floor offers ---
  if (rng_.chance(config_.below_floor_fraction)) {
    btc::Satoshi fee{};
    if (!rng_.chance(config_.zero_fee_fraction_of_low)) {
      // Sub-floor but non-zero: (0, 1) sat/vB.
      fee = btc::Satoshi{
          static_cast<std::int64_t>(rng_.uniform(0.05, 0.95) * vsize)};
    }
    out.tx = btc::make_payment(now, vsize, fee, random_user_address(),
                               random_user_address(), value, ++nonce_);
    return out;
  }

  // --- CPFP child of a stuck parent ---
  if (ctx.cpfp_parent != nullptr && rng_.chance(config_.cpfp_fraction)) {
    const double parent_rate = ctx.cpfp_parent->fee_rate().sat_per_vbyte();
    const double boost =
        config_.cpfp_rescue_boost * rng_.lognormal(0.0, config_.cpfp_boost_sigma);
    const double level = static_cast<double>(ctx.congestion);
    // Most rescuers pay around the going (normal-tier) rate — enough to
    // pull the parent to mid-block; the lognormal tail above produces the
    // occasional panicked 20-30x rescue that hoists a bottom-fee parent
    // near the top (Table 4's natural high-SPPE false positives).
    const double rescue_floor = 0.8 * config_.urgent_anchor_sat_vb *
                                std::exp(0.5 * level) *
                                estimator_blend(config_, ctx.rec_p50);
    const double child_rate =
        std::max({parent_rate * boost, rescue_floor, 1.0}) *
        rng_.lognormal(0.0, config_.fee_noise_sigma);
    const btc::Satoshi fee{static_cast<std::int64_t>(child_rate * vsize)};
    out.tx = btc::make_child_payment(now, vsize, fee, *ctx.cpfp_parent,
                                     random_user_address(), value, ++nonce_);
    out.used_cpfp_parent = true;
    return out;
  }

  // --- ordinary payment ---
  double rate = fee_rate_target(ctx);
  bool wants_accel = false;
  if (rng_.chance(config_.accel_request_fraction)) {
    // Dark-fee buyers deliberately offer a token public fee and pay the
    // pool off-chain instead (§5.4).
    rate = rng_.uniform(1.0, 1.6);
    wants_accel = true;
  }
  const btc::Satoshi fee{static_cast<std::int64_t>(rate * vsize)};
  out.tx = btc::make_payment(now, vsize, fee, random_user_address(),
                             random_user_address(), value, ++nonce_);
  out.wants_acceleration = wants_accel;
  return out;
}

}  // namespace cn::sim

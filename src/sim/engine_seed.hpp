// The PR-6-era single-threaded engine, kept verbatim as a differential
// oracle (tests prove Engine{threads=1} reproduces it byte-for-byte) and
// as the baseline bench_sim_scale measures the rearchitected engine
// against. Do not optimize or otherwise touch this file: its value is
// that it never changes.
#pragma once

#include "sim/engine.hpp"

namespace cn::sim {

/// The seed engine: a global priority-queue discrete-event loop. Shares
/// EngineConfig/SimResult with the production Engine (threads/shards
/// fields are ignored — this engine is always serial).
class SeedEngine {
 public:
  explicit SeedEngine(EngineConfig config);

  /// Runs the simulation to completion and returns the result.
  /// May be called once.
  SimResult run();

 private:
  struct Event {
    SimTime time = 0;
    std::uint64_t seq = 0;  ///< FIFO tie-break for equal times
    enum class Kind { kTxIssue, kObserverDeliver, kBlockFound, kSnapshot } kind{};
    /// Payload for kObserverDeliver.
    btc::Txid txid{};
    bool operator>(const Event& o) const noexcept {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  void schedule(SimTime time, Event::Kind kind, const btc::Txid& txid = {});
  void handle_tx_issue(SimTime now);
  bool broadcast_tx(btc::Transaction tx, SimTime now);
  const btc::Transaction* pick_rbf_original();
  void handle_block_found(SimTime now);
  void refresh_fee_percentiles();
  std::size_t pick_winner();
  const btc::Transaction* pick_cpfp_parent();
  void request_acceleration(const btc::Transaction& tx);

  EngineConfig config_;
  Rng rng_workload_;
  Rng rng_blocks_;
  Rng rng_misc_;

  WorkloadGenerator workload_;
  std::vector<MiningPool> pools_;
  std::vector<double> pool_weights_;
  std::vector<double> payout_weights_;
  std::vector<std::size_t> accel_pool_indices_;
  node::Mempool canonical_;
  node::ObserverNode observer_;
  node::FeeEstimator estimator_;
  AccelerationService acceleration_;
  btc::Chain chain_;

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  std::uint64_t next_seq_ = 0;

  std::unordered_map<btc::Txid, btc::Transaction> in_flight_to_observer_;
  std::deque<std::pair<SimTime, btc::Txid>> recent_broadcasts_;
  std::deque<btc::Txid> cpfp_candidates_;
  std::deque<btc::Txid> rbf_candidates_;

  double rec_p25_ = 1.0, rec_p50_ = 2.0, rec_p75_ = 4.0;
  std::uint64_t height_ = 0;
  btc::Address scam_address_{};
  std::vector<btc::Txid> scam_txids_;
  std::unordered_map<btc::Txid, SimTime> broadcast_time_;
  std::uint64_t issued_count_ = 0;
  std::uint64_t rbf_replacements_ = 0;
  bool ran_ = false;
};

}  // namespace cn::sim

// Miner policies: the behaviours (honest and otherwise) the paper audits.
//
// A policy is a transformation of the TemplateOptions a pool passes to the
// GBT builder. This mirrors how misbehaviour works in practice: pools run
// stock Bitcoin Core and express preferences through the knobs it exposes
// (`prioritisetransaction` fee deltas, relay floors, manual exclusion) —
// they do not rewrite the selection algorithm. Policies compose: a pool
// can be selfish AND sell acceleration AND tolerate low-fee transactions.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "node/block_template.hpp"
#include "node/mempool.hpp"
#include "sim/acceleration.hpp"

namespace cn::sim {

/// Everything a policy may consult when shaping a template.
struct PolicyContext {
  SimTime now = 0;
  std::uint64_t height = 0;
  /// Virtual-size budget for the template (engine-configured; scaled-down
  /// experiments shrink blocks and congestion thresholds together).
  std::uint64_t max_template_vsize = btc::kMaxBlockVsize - btc::kCoinbaseVsize;
  std::string pool_name;
  /// Wallets owned by this pool (reward + payout wallets).
  const std::unordered_set<btc::Address>* own_wallets = nullptr;
  /// Wallet sets of pools this pool colludes with.
  std::vector<const std::unordered_set<btc::Address>*> partner_wallets;
  /// The acceleration ledger (null if this pool sells no acceleration).
  const AccelerationService* acceleration = nullptr;
  /// When each transaction was first broadcast to the network (the
  /// engine's ground truth; null when the engine does not track it).
  /// WithholdingPolicy consults it to model a block mined in the past.
  const std::unordered_map<btc::Txid, SimTime>* broadcast_time = nullptr;
};

/// Fee delta large enough to outrank any organic fee-rate: with it, a
/// transaction's effective package rate exceeds every honest competitor.
inline constexpr btc::Satoshi kPriorityBoost{50LL * btc::kSatPerBtc};

class MinerPolicy {
 public:
  virtual ~MinerPolicy() = default;

  /// Human-readable policy name (diagnostics, DESIGN-level reporting).
  virtual std::string_view name() const noexcept = 0;

  /// Mutates @p options before template construction.
  virtual void apply(node::TemplateOptions& options, const node::Mempool& mempool,
                     const PolicyContext& ctx) const = 0;
};

/// §5.2 — boosts any pending transaction that spends from or pays to one
/// of the pool's own wallets.
class SelfInterestPolicy final : public MinerPolicy {
 public:
  std::string_view name() const noexcept override { return "self-interest"; }
  void apply(node::TemplateOptions& options, const node::Mempool& mempool,
             const PolicyContext& ctx) const override;
};

/// §5.2 — boosts transactions involving a *partner* pool's wallets
/// (ViaBTC accelerating 1THash&58Coin and SlushPool in the paper).
class CollusionPolicy final : public MinerPolicy {
 public:
  std::string_view name() const noexcept override { return "collusion"; }
  void apply(node::TemplateOptions& options, const node::Mempool& mempool,
             const PolicyContext& ctx) const override;
};

/// §5.4 — boosts transactions whose senders paid this pool's acceleration
/// service off-chain.
class DarkFeePolicy final : public MinerPolicy {
 public:
  std::string_view name() const noexcept override { return "dark-fee"; }
  void apply(node::TemplateOptions& options, const node::Mempool& mempool,
             const PolicyContext& ctx) const override;
};

/// §5.3 hypothesis (not observed in the wild): refuses to mine
/// transactions paying to blacklisted wallets. Included so the
/// deceleration test has a planted positive to validate against.
class CensorshipPolicy final : public MinerPolicy {
 public:
  explicit CensorshipPolicy(std::unordered_set<btc::Address> blacklist)
      : blacklist_(std::move(blacklist)) {}

  std::string_view name() const noexcept override { return "censorship"; }
  void apply(node::TemplateOptions& options, const node::Mempool& mempool,
             const PolicyContext& ctx) const override;

 private:
  std::unordered_set<btc::Address> blacklist_;
};

/// §5.4.2 residual — now and then a pool bumps a transaction outside any
/// public service (support tickets, partner exchanges, operator whim).
/// Table 4's non-accelerated top-of-block placements show such opaque
/// one-off prioritization exists: ~26-35% of BTC.com's SPPE>=99
/// transactions were NOT accelerated through the public API. The policy
/// picks a pseudo-random low-fee pending transaction roughly once per
/// @p per_block_probability blocks and boosts it.
class CourtesyBoostPolicy final : public MinerPolicy {
 public:
  explicit CourtesyBoostPolicy(double per_block_probability = 0.3)
      : probability_(per_block_probability) {}

  std::string_view name() const noexcept override { return "courtesy-boost"; }
  void apply(node::TemplateOptions& options, const node::Mempool& mempool,
             const PolicyContext& ctx) const override;

 private:
  double probability_;
};

/// §4.2.3 — occasionally lifts the fee-rate floor, letting below-minimum
/// (even zero-fee) transactions into a block, as F2Pool/ViaBTC/BTC.com
/// sporadically did. The floor is lifted deterministically on roughly one
/// in @p period blocks (derived from the height).
class LowFeeTolerancePolicy final : public MinerPolicy {
 public:
  explicit LowFeeTolerancePolicy(std::uint64_t period = 16) : period_(period) {}

  std::string_view name() const noexcept override { return "low-fee-tolerance"; }
  void apply(node::TemplateOptions& options, const node::Mempool& mempool,
             const PolicyContext& ctx) const override;

 private:
  std::uint64_t period_;
};

/// Selfish-mining block withholding (adversary zoo, ROADMAP item 4). A
/// withholding pool mines a block, sits on it for @p delay_s seconds,
/// and only then publishes — so the published block's template was
/// frozen before the freshest mempool arrivals. We model the *template
/// consequence* of that lag: transactions first broadcast within the
/// last @p delay_s seconds are excluded from the block, exactly what an
/// honest observer sees when comparing the block against their mempool
/// (the Bitcoin-SV `-detectselfishmining` signature: block timestamp
/// lags, and a large fraction of mempool transactions are missing).
/// delay_s == 0 touches nothing and is byte-identical to honest.
class WithholdingPolicy final : public MinerPolicy {
 public:
  explicit WithholdingPolicy(double delay_s) : delay_s_(delay_s) {}

  std::string_view name() const noexcept override { return "withholding"; }
  void apply(node::TemplateOptions& options, const node::Mempool& mempool,
             const PolicyContext& ctx) const override;

 private:
  double delay_s_;
};

/// Evasion-aware self-interest ("On the Effectiveness of Mempool-based
/// Transaction Auditing"): boosts each own-wallet transaction only with
/// probability theta ∈ [0,1], using a deterministic per-transaction coin
/// keyed on (pool, txid). theta is the *retained selfishness intensity*:
///   theta = 1  — boosts everything, byte-identical to SelfInterestPolicy;
///   theta = 0  — boosts nothing, byte-identical to the honest baseline
///                (no RNG consumed, no deltas written), so theta=0 worlds
///                share cache entries with honest controls.
/// The evasion budget reported by the power sweep is 1 - theta.
class EvasiveSelfInterestPolicy final : public MinerPolicy {
 public:
  explicit EvasiveSelfInterestPolicy(double theta) : theta_(theta) {}

  std::string_view name() const noexcept override {
    return "evasive-self-interest";
  }
  void apply(node::TemplateOptions& options, const node::Mempool& mempool,
             const PolicyContext& ctx) const override;

  double theta() const noexcept { return theta_; }

 private:
  double theta_;
};

/// BitcoinF-style fair queue: above the relay floor, serve transactions
/// strictly first-come-first-served instead of by fee rate. Pairs with
/// EngineConfig::fee_only to study the zero-subsidy regime where the
/// paper's fee-ordering norms no longer bind.
class FairQueuePolicy final : public MinerPolicy {
 public:
  std::string_view name() const noexcept override { return "fair-queue"; }
  void apply(node::TemplateOptions& options, const node::Mempool& mempool,
             const PolicyContext& ctx) const override;
};

}  // namespace cn::sim

// Shard lanes for the parallel discrete-event engine (DESIGN.md §12).
//
// The sharded engine partitions the *workload* into S independent
// generation lanes. Each lane owns a Poisson stream at 1/S of the global
// arrival rate (superposition: S independent thinned streams at rate r/S
// are exactly one stream at rate r), its own RNG streams forked from
// EngineConfig::seed + the stable shard id, a disjoint nonce range (so
// synthetic funding outpoints can never collide across shards), and its
// own CPFP/RBF candidate lists (users bump their *own* transactions).
//
// Within a barrier window [t0, t1) the lanes run concurrently against a
// frozen read-only view of the canonical mempool and a frozen
// WindowContext (fee percentiles, congestion). Lanes communicate with
// the merge loop only through typed ShardMsg buffers handed over at the
// barrier — the only cross-shard synchronization point. Everything the
// merge applies (mempool admission, block production, bookkeeping) is
// serial and deterministic, so results depend only on (seed, shards,
// window), never on thread count or scheduling.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_set>
#include <vector>

#include "node/observer.hpp"
#include "sim/engine.hpp"

namespace cn::sim {

/// Frozen world view a shard generates against for one window.
struct WindowContext {
  double rec_p25 = 1.0;
  double rec_p50 = 2.0;
  double rec_p75 = 4.0;
  node::CongestionLevel congestion = node::CongestionLevel::kNone;
};

/// Typed message from a shard's generation lane to the merge loop: one
/// generated transaction plus its classification flags.
struct ShardMsg {
  SimTime time = 0;
  std::uint32_t shard = 0;
  std::uint32_t seq = 0;  ///< within-shard issue counter (tie-break)
  btc::Transaction tx;
  bool is_rbf_bump = false;
  bool is_scam = false;
  bool wants_acceleration = false;
  /// Ordinary payment below the recent median rate: a future CPFP/RBF
  /// candidate for the originating shard.
  bool low_fee_ordinary = false;
};

/// One workload generation lane. generate() is called concurrently
/// across shards; it touches only shard-local state plus read-only
/// shared state (canonical mempool, pool tables).
class ShardLane {
 public:
  ShardLane(std::uint32_t id, const EngineConfig& config,
            const std::vector<MiningPool>* pools,
            const std::vector<double>* payout_weights,
            btc::Address scam_address, std::uint32_t shard_count);

  /// Appends this shard's transaction stream for [t0, t1) to @p out.
  /// @p canonical is frozen for the duration of the call.
  void generate(SimTime t0, SimTime t1, const WindowContext& ctx,
                const node::Mempool& canonical, std::vector<ShardMsg>& out);

  /// Registers an accepted low-fee ordinary transaction of this shard as
  /// a future CPFP/RBF candidate. Called from the merge thread (between
  /// windows), never concurrently with generate().
  void note_candidate(const btc::Txid& id);

  std::uint64_t cpfp_picks() const noexcept { return cpfp_picks_; }
  std::uint64_t rbf_attempts() const noexcept { return rbf_attempts_; }

 private:
  void emit(SimTime now, const WindowContext& ctx,
            const node::Mempool& canonical, std::vector<ShardMsg>& out);
  const btc::Transaction* pick_cpfp_parent(const node::Mempool& canonical);
  const btc::Transaction* pick_rbf_original(const node::Mempool& canonical);

  std::uint32_t id_ = 0;
  const EngineConfig* config_ = nullptr;
  const std::vector<MiningPool>* pools_ = nullptr;
  const std::vector<double>* payout_weights_ = nullptr;
  btc::Address scam_address_{};
  double shard_count_ = 1.0;
  Rng rng_;  ///< shard-local decision stream (self-interest, scam, picks)
  WorkloadGenerator workload_;
  SimTime next_issue_ = 0;
  bool primed_ = false;
  std::uint32_t seq_ = 0;
  std::deque<btc::Txid> cpfp_candidates_;
  std::deque<btc::Txid> rbf_candidates_;
  std::uint64_t cpfp_picks_ = 0;
  std::uint64_t rbf_attempts_ = 0;
};

/// A unit of work for the observer lane, which replays the observer
/// node's event stream one window behind the merge (pipelined with the
/// next window's generation phase).
struct ObserverOp {
  enum class Kind : std::uint8_t { kDeliver, kBlock, kSnapshot };
  SimTime time = 0;
  std::uint64_t seq = 0;  ///< merge-order tie-break
  Kind kind = Kind::kDeliver;
  btc::Transaction tx;            ///< kDeliver payload
  std::vector<btc::Txid> mined;   ///< kBlock payload
};

/// Applies ObserverOps in order. The serial engine checks the chain at
/// delivery time to skip already-mined transactions; this lane keeps its
/// own recently-mined set (ops arrive in global time order, so the set's
/// contents at a delivery match the chain at that simulated time).
class ObserverLane {
 public:
  explicit ObserverLane(node::ObserverNode* observer) : observer_(observer) {}

  /// Consumes the ops (transaction payloads are moved into the node).
  void apply(std::vector<ObserverOp>& ops);

 private:
  node::ObserverNode* observer_;
  std::unordered_set<btc::Txid> mined_recent_;
  std::deque<std::pair<SimTime, btc::Txid>> mined_order_;
};

}  // namespace cn::sim

#include "sim/policy.hpp"

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace cn::sim {

namespace {

bool involves_any(const btc::Transaction& tx,
                  const std::unordered_set<btc::Address>& wallets) {
  for (const btc::TxInput& in : tx.inputs())
    if (wallets.contains(in.owner)) return true;
  for (const btc::TxOutput& out : tx.outputs())
    if (wallets.contains(out.to)) return true;
  return false;
}

}  // namespace

void SelfInterestPolicy::apply(node::TemplateOptions& options,
                               const node::Mempool& mempool,
                               const PolicyContext& ctx) const {
  CN_ASSERT(ctx.own_wallets != nullptr);
  mempool.for_each_entry([&](const node::MempoolEntry& entry) {
    if (involves_any(entry.tx, *ctx.own_wallets)) {
      options.fee_deltas[entry.tx.id()] += kPriorityBoost;
    }
  });
}

void CollusionPolicy::apply(node::TemplateOptions& options,
                            const node::Mempool& mempool,
                            const PolicyContext& ctx) const {
  if (ctx.partner_wallets.empty()) return;
  mempool.for_each_entry([&](const node::MempoolEntry& entry) {
    for (const auto* wallets : ctx.partner_wallets) {
      if (involves_any(entry.tx, *wallets)) {
        options.fee_deltas[entry.tx.id()] += kPriorityBoost;
        break;
      }
    }
  });
}

void DarkFeePolicy::apply(node::TemplateOptions& options,
                          const node::Mempool& mempool,
                          const PolicyContext& ctx) const {
  if (ctx.acceleration == nullptr) return;
  // Iterate the (small) accelerated set rather than the mempool.
  for (const btc::Txid& id : ctx.acceleration->accelerated_via(ctx.pool_name)) {
    if (mempool.contains(id)) options.fee_deltas[id] += kPriorityBoost;
  }
}

void CensorshipPolicy::apply(node::TemplateOptions& options,
                             const node::Mempool& mempool,
                             const PolicyContext&) const {
  mempool.for_each_entry([&](const node::MempoolEntry& entry) {
    if (involves_any(entry.tx, blacklist_)) options.exclude.insert(entry.tx.id());
  });
}

void CourtesyBoostPolicy::apply(node::TemplateOptions& options,
                                const node::Mempool& mempool,
                                const PolicyContext& ctx) const {
  // Deterministic coin flip keyed on (pool, height).
  std::uint64_t state =
      stable_hash64(ctx.pool_name) ^ (ctx.height * 0xd1b54a32d192ed03ULL);
  const double u =
      static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
  if (u >= probability_) return;

  // Pick the pending low-fee transaction minimizing a height-keyed hash —
  // a pseudo-random choice that is stable for replay.
  const btc::Txid* chosen = nullptr;
  std::uint64_t best = ~std::uint64_t{0};
  mempool.for_each_entry([&](const node::MempoolEntry& entry) {
    if (entry.tx.fee_rate().sat_per_vbyte() >= 5.0) return;
    std::uint64_t h = entry.tx.id().short_id() ^ ctx.height;
    h = splitmix64(h);
    if (h < best) {
      best = h;
      chosen = &entry.tx.id();
    }
  });
  if (chosen != nullptr) options.fee_deltas[*chosen] += kPriorityBoost;
}

void LowFeeTolerancePolicy::apply(node::TemplateOptions& options,
                                  const node::Mempool&,
                                  const PolicyContext& ctx) const {
  CN_ASSERT(period_ > 0);
  // Deterministic pseudo-random choice keyed on (pool, height).
  const std::uint64_t h =
      stable_hash64(ctx.pool_name) ^ (ctx.height * 0x9e3779b97f4a7c15ULL);
  std::uint64_t state = h;
  if (splitmix64(state) % period_ == 0) {
    options.min_rate = btc::FeeRate{};  // lift the floor entirely
  }
}

}  // namespace cn::sim

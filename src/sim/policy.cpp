#include "sim/policy.hpp"

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace cn::sim {

namespace {

bool involves_any(const btc::Transaction& tx,
                  const std::unordered_set<btc::Address>& wallets) {
  for (const btc::TxInput& in : tx.inputs())
    if (wallets.contains(in.owner)) return true;
  for (const btc::TxOutput& out : tx.outputs())
    if (wallets.contains(out.to)) return true;
  return false;
}

}  // namespace

void SelfInterestPolicy::apply(node::TemplateOptions& options,
                               const node::Mempool& mempool,
                               const PolicyContext& ctx) const {
  CN_ASSERT(ctx.own_wallets != nullptr);
  mempool.for_each_entry([&](const node::MempoolEntry& entry) {
    if (involves_any(entry.tx, *ctx.own_wallets)) {
      options.fee_deltas[entry.tx.id()] += kPriorityBoost;
    }
  });
}

void CollusionPolicy::apply(node::TemplateOptions& options,
                            const node::Mempool& mempool,
                            const PolicyContext& ctx) const {
  if (ctx.partner_wallets.empty()) return;
  mempool.for_each_entry([&](const node::MempoolEntry& entry) {
    for (const auto* wallets : ctx.partner_wallets) {
      // A partner slot may legitimately be empty (a pool that colludes
      // with a wallet-less or unknown partner); skip, never deref.
      if (wallets == nullptr || wallets->empty()) continue;
      if (involves_any(entry.tx, *wallets)) {
        options.fee_deltas[entry.tx.id()] += kPriorityBoost;
        break;
      }
    }
  });
}

void DarkFeePolicy::apply(node::TemplateOptions& options,
                          const node::Mempool& mempool,
                          const PolicyContext& ctx) const {
  if (ctx.acceleration == nullptr) return;
  // Iterate the (small) accelerated set rather than the mempool.
  for (const btc::Txid& id : ctx.acceleration->accelerated_via(ctx.pool_name)) {
    if (mempool.contains(id)) options.fee_deltas[id] += kPriorityBoost;
  }
}

void CensorshipPolicy::apply(node::TemplateOptions& options,
                             const node::Mempool& mempool,
                             const PolicyContext&) const {
  mempool.for_each_entry([&](const node::MempoolEntry& entry) {
    if (involves_any(entry.tx, blacklist_)) options.exclude.insert(entry.tx.id());
  });
}

void CourtesyBoostPolicy::apply(node::TemplateOptions& options,
                                const node::Mempool& mempool,
                                const PolicyContext& ctx) const {
  // Deterministic coin flip keyed on (pool, height).
  std::uint64_t state =
      stable_hash64(ctx.pool_name) ^ (ctx.height * 0xd1b54a32d192ed03ULL);
  const double u =
      static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
  if (u >= probability_) return;

  // Pick the pending low-fee transaction minimizing a height-keyed hash —
  // a pseudo-random choice that is stable for replay.
  const btc::Txid* chosen = nullptr;
  std::uint64_t best = ~std::uint64_t{0};
  mempool.for_each_entry([&](const node::MempoolEntry& entry) {
    if (entry.tx.fee_rate().sat_per_vbyte() >= 5.0) return;
    std::uint64_t h = entry.tx.id().short_id() ^ ctx.height;
    h = splitmix64(h);
    if (h < best) {
      best = h;
      chosen = &entry.tx.id();
    }
  });
  if (chosen != nullptr) options.fee_deltas[*chosen] += kPriorityBoost;
}

void LowFeeTolerancePolicy::apply(node::TemplateOptions& options,
                                  const node::Mempool&,
                                  const PolicyContext& ctx) const {
  CN_ASSERT(period_ > 0);
  // Deterministic pseudo-random choice keyed on (pool, height).
  const std::uint64_t h =
      stable_hash64(ctx.pool_name) ^ (ctx.height * 0x9e3779b97f4a7c15ULL);
  std::uint64_t state = h;
  if (splitmix64(state) % period_ == 0) {
    options.min_rate = btc::FeeRate{};  // lift the floor entirely
  }
}

void WithholdingPolicy::apply(node::TemplateOptions& options,
                              const node::Mempool& mempool,
                              const PolicyContext& ctx) const {
  if (delay_s_ <= 0.0 || ctx.broadcast_time == nullptr) return;
  // The block being published now was actually assembled delay_s ago:
  // anything that entered the network since then cannot be in it.
  const SimTime cutoff = ctx.now - delay_s_;
  mempool.for_each_entry([&](const node::MempoolEntry& entry) {
    const auto it = ctx.broadcast_time->find(entry.tx.id());
    if (it != ctx.broadcast_time->end() && it->second > cutoff) {
      options.exclude.insert(entry.tx.id());
    }
  });
}

void EvasiveSelfInterestPolicy::apply(node::TemplateOptions& options,
                                      const node::Mempool& mempool,
                                      const PolicyContext& ctx) const {
  if (theta_ <= 0.0) return;  // fully evasive == honest, byte-identical
  CN_ASSERT(ctx.own_wallets != nullptr);
  const std::uint64_t pool_key = stable_hash64(ctx.pool_name);
  mempool.for_each_entry([&](const node::MempoolEntry& entry) {
    if (!involves_any(entry.tx, *ctx.own_wallets)) return;
    if (theta_ < 1.0) {
      // Per-transaction deterministic coin keyed on (pool, txid): the
      // same transaction gets the same verdict in every block attempt,
      // so a throttled boost looks like genuine indifference rather
      // than flicker an auditor could average away.
      std::uint64_t state = pool_key ^ entry.tx.id().short_id();
      const double u = static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
      if (u >= theta_) return;
    }
    options.fee_deltas[entry.tx.id()] += kPriorityBoost;
  });
}

void FairQueuePolicy::apply(node::TemplateOptions& options,
                            const node::Mempool&, const PolicyContext&) const {
  options.fifo = true;
}

}  // namespace cn::sim

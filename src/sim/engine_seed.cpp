// Verbatim copy of the PR-6 engine (see engine_seed.hpp). Kept frozen as
// the byte-identity oracle and bench baseline; do not modify.
#include "sim/engine_seed.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace cn::sim {

namespace {

std::uint64_t congestion_unit(const EngineConfig& config) {
  // Congestion bins are defined relative to the block budget (in the real
  // network: 1 MB). Scaled-down experiments scale the thresholds with it.
  return config.max_block_vsize;
}

node::CongestionLevel scaled_congestion(std::uint64_t pending_vsize,
                                        const EngineConfig& config) {
  const std::uint64_t unit = congestion_unit(config);
  if (pending_vsize <= unit) return node::CongestionLevel::kNone;
  if (pending_vsize <= 2 * unit) return node::CongestionLevel::kLow;
  if (pending_vsize <= 4 * unit) return node::CongestionLevel::kMedium;
  return node::CongestionLevel::kHigh;
}

}  // namespace

SeedEngine::SeedEngine(EngineConfig config)
    : config_(std::move(config)),
      rng_workload_(Rng(config_.seed).fork("workload")),
      rng_blocks_(Rng(config_.seed).fork("blocks")),
      rng_misc_(Rng(config_.seed).fork("misc")),
      workload_(config_.workload, rng_workload_.fork("txgen")),
      canonical_(/*min_relay_sat_per_vb=*/0),
      observer_(config_.observer_min_relay_sat_per_vb),
      estimator_(/*window_blocks=*/6),
      acceleration_(config_.quote_model),
      chain_(config_.genesis_height) {
  CN_ASSERT(!config_.pools.empty());
  CN_ASSERT(config_.max_block_vsize > btc::kCoinbaseVsize);
  CN_ASSERT(config_.max_block_vsize <= btc::kMaxBlockVsize);

  double total_share = 0.0;
  for (const PoolSpec& spec : config_.pools) {
    CN_ASSERT(spec.hash_share > 0.0);
    total_share += spec.hash_share;
    pools_.emplace_back(spec);
  }
  for (std::size_t i = 0; i < pools_.size(); ++i) {
    pool_weights_.push_back(pools_[i].hash_share() / total_share);
    payout_weights_.push_back(pool_weights_.back() * pools_[i].spec().self_tx_weight);
    if (pools_[i].spec().offers_acceleration) accel_pool_indices_.push_back(i);
  }
  height_ = config_.genesis_height;
  if (config_.workload.scam.has_value()) {
    scam_address_ = btc::Address::derive("scam/twitter-wallet");
  }
}

void SeedEngine::schedule(SimTime time, Event::Kind kind, const btc::Txid& txid) {
  queue_.push(Event{time, next_seq_++, kind, txid});
}

std::size_t SeedEngine::pick_winner() {
  return rng_blocks_.weighted_index(pool_weights_);
}

const btc::Transaction* SeedEngine::pick_cpfp_parent() {
  while (!cpfp_candidates_.empty()) {
    // Prefer older stuck parents (front) with a light random skip so not
    // every child picks the same parent.
    const std::size_t idx =
        cpfp_candidates_.size() <= 1
            ? 0
            : static_cast<std::size_t>(rng_misc_.uniform_below(
                  std::min<std::uint64_t>(cpfp_candidates_.size(), 8)));
    const btc::Txid id = cpfp_candidates_[idx];
    const node::MempoolEntry* entry = canonical_.find(id);
    if (entry == nullptr) {
      cpfp_candidates_.erase(cpfp_candidates_.begin() +
                             static_cast<std::ptrdiff_t>(idx));
      continue;
    }
    // One child per parent: retire the candidate once used.
    cpfp_candidates_.erase(cpfp_candidates_.begin() +
                           static_cast<std::ptrdiff_t>(idx));
    return &entry->tx;
  }
  return nullptr;
}

void SeedEngine::request_acceleration(const btc::Transaction& tx) {
  if (accel_pool_indices_.empty()) return;
  // Users pick a service roughly proportionally to pool prominence.
  std::vector<double> weights;
  weights.reserve(accel_pool_indices_.size());
  for (std::size_t i : accel_pool_indices_) weights.push_back(pools_[i].hash_share());
  const std::size_t choice = rng_misc_.weighted_index(weights);
  const MiningPool& pool = pools_[accel_pool_indices_[choice]];
  const btc::Satoshi paid = acceleration_.quote(tx, rng_misc_);
  acceleration_.accelerate(tx.id(), pool.name(), paid);
}

const btc::Transaction* SeedEngine::pick_rbf_original() {
  while (!rbf_candidates_.empty()) {
    const btc::Txid id = rbf_candidates_.front();
    rbf_candidates_.pop_front();
    const node::MempoolEntry* entry = canonical_.find(id);
    if (entry != nullptr) return &entry->tx;
  }
  return nullptr;
}

bool SeedEngine::broadcast_tx(btc::Transaction tx, SimTime now) {
  const btc::Txid id = tx.id();
  const auto verdict = canonical_.accept(std::move(tx), now);
  if (verdict != node::AcceptResult::kAccepted) return false;

  ++issued_count_;
  broadcast_time_.emplace(id, now);
  recent_broadcasts_.emplace_back(now, id);

  const node::MempoolEntry* entry = canonical_.find(id);
  CN_ASSERT(entry != nullptr);
  in_flight_to_observer_.emplace(id, entry->tx);
  schedule(config_.propagation.arrival(id, kObserverNode, now),
           Event::Kind::kObserverDeliver, id);
  return true;
}

void SeedEngine::handle_tx_issue(SimTime now) {
  WorkloadContext ctx;
  ctx.rec_p25 = rec_p25_;
  ctx.rec_p50 = rec_p50_;
  ctx.rec_p75 = rec_p75_;
  ctx.congestion = scaled_congestion(canonical_.total_vsize(), config_);

  // Replace-by-fee branch: an impatient user bumps their stuck payment
  // instead of issuing a new one.
  if (rng_misc_.chance(config_.workload.rbf_fraction)) {
    if (const btc::Transaction* original = pick_rbf_original()) {
      const std::uint64_t replaced_before = canonical_.replaced_count();
      btc::Transaction bump = workload_.make_rbf_replacement(now, *original, ctx);
      // `original` is invalidated by the accept below; do not touch it after.
      if (broadcast_tx(std::move(bump), now) &&
          canonical_.replaced_count() > replaced_before) {
        ++rbf_replacements_;
      }
      const SimTime next_rbf = workload_.next_arrival(now);
      if (next_rbf <= config_.duration) schedule(next_rbf, Event::Kind::kTxIssue);
      return;
    }
  }

  const double rate_now = std::max(workload_.rate_at(now), 1e-9);

  // Special-class coin flips (rates expressed per block / per hour are
  // converted to per-issue probabilities at the current arrival rate).
  const double p_self = config_.workload.self_interest_per_block /
                        (config_.mean_block_interval_s * rate_now);
  ctx.make_self_interest = rng_misc_.chance(std::min(p_self, 0.5));
  if (ctx.make_self_interest) {
    // Payout volume scales with size modulated by the pool's configured
    // intensity (real pools differ wildly here — see PoolSpec).
    const std::size_t pool_idx = rng_misc_.weighted_index(payout_weights_);
    const auto& wallets = pools_[pool_idx].wallets();
    ctx.pool_wallet = wallets[rng_misc_.uniform_below(wallets.size())];
  } else if (config_.workload.scam.has_value()) {
    const ScamConfig& scam = *config_.workload.scam;
    if (now >= scam.start && now < scam.end) {
      const double p_scam = scam.txs_per_hour / (3600.0 * rate_now);
      ctx.make_scam = rng_misc_.chance(std::min(p_scam, 0.5));
      ctx.scam_address = scam_address_;
    }
  }
  if (!ctx.make_self_interest && !ctx.make_scam) {
    ctx.cpfp_parent = pick_cpfp_parent();
  }

  GeneratedTx generated = workload_.make_transaction(now, ctx);
  const btc::Txid id = generated.tx.id();
  const bool ordinary = !generated.is_scam && !generated.is_self_interest &&
                        !generated.used_cpfp_parent;
  const bool low_fee = generated.tx.fee_rate().sat_per_vbyte() < rec_p50_;

  if (generated.is_scam) scam_txids_.push_back(id);
  if (generated.wants_acceleration) request_acceleration(generated.tx);

  const bool accepted = broadcast_tx(std::move(generated.tx), now);
  CN_ASSERT(accepted);  // fresh payments never conflict

  // Low-fee ordinary txs become future CPFP parents or RBF bump targets.
  if (ordinary && low_fee) {
    if (cpfp_candidates_.size() < 512) cpfp_candidates_.push_back(id);
    if (rbf_candidates_.size() < 256) rbf_candidates_.push_back(id);
  }

  // Next arrival.
  const SimTime next = workload_.next_arrival(now);
  if (next <= config_.duration) schedule(next, Event::Kind::kTxIssue);
}

void SeedEngine::refresh_fee_percentiles() {
  if (estimator_.sample_count() == 0) return;
  rec_p25_ = std::max(estimator_.recommend_sat_per_vb(0.25), 1.0);
  rec_p50_ = std::max(estimator_.recommend_sat_per_vb(0.50), 1.0);
  rec_p75_ = std::max(estimator_.recommend_sat_per_vb(0.75), 1.0);
}

void SeedEngine::handle_block_found(SimTime now) {
  MiningPool& winner = pools_[pick_winner()];

  node::BlockTemplate tpl;
  if (!rng_blocks_.chance(config_.empty_block_fraction)) {
    // Propagation: exclude transactions this pool has not yet heard of.
    std::unordered_set<btc::Txid> exclude;
    if (config_.propagation_exclusion) {
      const auto cap = static_cast<SimTime>(config_.propagation.cap_seconds) + 1;
      while (!recent_broadcasts_.empty() &&
             recent_broadcasts_.front().first + cap < now) {
        recent_broadcasts_.pop_front();
      }
      for (const auto& [t_broadcast, id] : recent_broadcasts_) {
        if (!canonical_.contains(id)) continue;
        if (config_.propagation.arrival(id, winner.name(), t_broadcast) > now) {
          exclude.insert(id);
        }
      }
    }

    PolicyContext ctx;
    ctx.now = now;
    ctx.height = height_;
    ctx.max_template_vsize = config_.max_block_vsize - btc::kCoinbaseVsize;
    ctx.pool_name = winner.name();
    ctx.own_wallets = &winner.wallet_set();
    for (const std::string& partner : winner.spec().accelerates_for) {
      for (const MiningPool& other : pools_) {
        if (other.name() == partner) ctx.partner_wallets.push_back(&other.wallet_set());
      }
    }
    if (winner.spec().offers_acceleration) ctx.acceleration = &acceleration_;

    tpl = winner.build_template(canonical_, ctx, exclude);
  }

  btc::Coinbase coinbase;
  coinbase.tag = winner.coinbase_tag();
  coinbase.reward_address = winner.next_reward_wallet();
  coinbase.reward = btc::block_subsidy(height_) + tpl.total_fees;

  for (const btc::Transaction& tx : tpl.txs) canonical_.remove(tx.id());

  btc::Block block(height_, now, std::move(coinbase), std::move(tpl.txs));
  observer_.on_block(block);
  estimator_.on_block(block);
  refresh_fee_percentiles();
  chain_.append(std::move(block));
  ++height_;

  const auto gap = static_cast<SimTime>(
      rng_blocks_.exponential(1.0 / config_.mean_block_interval_s) + 0.5);
  const SimTime next = now + std::max<SimTime>(gap, 1);
  if (next <= config_.duration) schedule(next, Event::Kind::kBlockFound);
}

SimResult SeedEngine::run() {
  CN_ASSERT(!ran_);
  ran_ = true;

  schedule(workload_.next_arrival(0), Event::Kind::kTxIssue);
  const auto first_gap = static_cast<SimTime>(
      rng_blocks_.exponential(1.0 / config_.mean_block_interval_s) + 0.5);
  schedule(std::max<SimTime>(first_gap, 1), Event::Kind::kBlockFound);
  schedule(kSnapshotInterval, Event::Kind::kSnapshot);

  while (!queue_.empty()) {
    const Event ev = queue_.top();
    queue_.pop();
    if (ev.time > config_.duration) continue;
    switch (ev.kind) {
      case Event::Kind::kTxIssue:
        handle_tx_issue(ev.time);
        break;
      case Event::Kind::kObserverDeliver: {
        const auto it = in_flight_to_observer_.find(ev.txid);
        if (it != in_flight_to_observer_.end()) {
          // Deliver even if a pool has already mined it (the real network
          // gossips both ways); the observer prunes on the block event,
          // which it processes when the block reaches it.
          if (!chain_.locate(ev.txid).has_value()) {
            observer_.on_transaction(it->second, ev.time);
          }
          in_flight_to_observer_.erase(it);
        }
        break;
      }
      case Event::Kind::kBlockFound:
        handle_block_found(ev.time);
        break;
      case Event::Kind::kSnapshot:
        observer_.record_snapshot(ev.time);
        if (ev.time + kSnapshotInterval <= config_.duration) {
          schedule(ev.time + kSnapshotInterval, Event::Kind::kSnapshot);
        }
        break;
    }
  }

  SimResult result;
  result.config = config_;
  result.chain = std::move(chain_);
  result.observer = std::move(observer_);
  result.acceleration = std::move(acceleration_);
  for (const MiningPool& pool : pools_) {
    result.pool_wallets.emplace(pool.name(), pool.wallets());
  }
  result.scam_address = scam_address_;
  result.scam_txids = std::move(scam_txids_);
  result.broadcast_time = std::move(broadcast_time_);
  result.issued_count = issued_count_;
  result.rbf_replacements = rbf_replacements_;
  return result;
}

}  // namespace cn::sim

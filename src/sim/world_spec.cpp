#include "sim/world_spec.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace cn::sim {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

bool knob_is(const std::pair<std::string, double>& knob, std::string_view name,
             bool& matched) {
  if (knob.first != name) return false;
  matched = true;
  return true;
}

}  // namespace

const char* dataset_kind_name(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kA: return "A";
    case DatasetKind::kB: return "B";
    case DatasetKind::kC: return "C";
  }
  return "?";
}

WorldSpec& WorldSpec::set(std::string_view name, double value) {
  const auto it = std::lower_bound(
      knobs.begin(), knobs.end(), name,
      [](const auto& knob, std::string_view n) { return knob.first < n; });
  if (it != knobs.end() && it->first == name) {
    it->second = value;
  } else {
    knobs.emplace(it, std::string(name), value);
  }
  return *this;
}

std::optional<double> WorldSpec::knob(std::string_view name) const {
  for (const auto& [k, v] : knobs) {
    if (k == name) return v;
  }
  return std::nullopt;
}

std::vector<std::uint8_t> WorldSpec::canonical_bytes() const {
  std::vector<std::uint8_t> out;
  put_u32(out, kWorldSpecVersion);
  out.push_back(static_cast<std::uint8_t>(kind));
  put_u64(out, seed);
  put_u64(out, std::bit_cast<std::uint64_t>(scale));
  put_string(out, scenario);
  // set() keeps the list sorted, but serialize a sorted copy anyway so a
  // hand-built knob vector still canonicalizes.
  std::vector<std::pair<std::string, double>> sorted = knobs;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  put_u32(out, static_cast<std::uint32_t>(sorted.size()));
  for (const auto& [name, value] : sorted) {
    put_string(out, name);
    put_u64(out, std::bit_cast<std::uint64_t>(value));
  }
  return out;
}

std::uint64_t WorldSpec::fingerprint() const {
  constexpr std::uint64_t kOffset = 1469598103934665603ull;
  constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t h = kOffset;
  for (const std::uint8_t byte : canonical_bytes()) {
    h = (h ^ byte) * kPrime;
  }
  return h;
}

std::string WorldSpec::label() const {
  char head[64];
  std::snprintf(head, sizeof head, "%s s%llu x%.3g", dataset_kind_name(kind),
                static_cast<unsigned long long>(seed), scale);
  std::string out = head;
  out += ' ';
  out += scenario;
  if (!knobs.empty()) {
    out += '[';
    for (std::size_t i = 0; i < knobs.size(); ++i) {
      char val[40];
      std::snprintf(val, sizeof val, "%s=%.4g", knobs[i].first.c_str(),
                    knobs[i].second);
      if (i != 0) out += ' ';
      out += val;
    }
    out += ']';
  }
  return out;
}

EngineConfig WorldSpec::config() const {
  EngineConfig config = dataset_config(kind, seed, scale);
  // Fixed application order, independent of the knob list's order, so
  // dependent knobs compose deterministically (utilization reads the
  // block budget, which genesis_height/builder never change, but the
  // frozen order removes any doubt).
  bool matched = false;
  for (const auto& knob : knobs) {
    matched = false;
    if (knob_is(knob, "builder", matched)) {
      set_all_builders(config, knob.second == 0.0 ? BuilderKind::kGbt
                                                  : BuilderKind::kLegacyPriority);
    } else if (knob_is(knob, "genesis_height", matched)) {
      config.genesis_height = static_cast<std::uint64_t>(knob.second);
    } else if (knob_is(knob, "scam", matched)) {
      if (knob.second == 0.0) config.workload.scam.reset();
    } else if (knob_is(knob, "self_interest_per_block", matched)) {
      config.workload.self_interest_per_block = knob.second;
    } else if (knob_is(knob, "selfish", matched)) {
      if (knob.second == 0.0) {
        for (auto& pool : config.pools) {
          pool.selfish = false;
          pool.accelerates_for.clear();
        }
      }
    } else if (knob_is(knob, "propagation_exclusion", matched)) {
      config.propagation_exclusion = knob.second != 0.0;
    } else if (knob_is(knob, "age_weight_per_hour", matched)) {
      for (auto& pool : config.pools) pool.age_weight_per_hour = knob.second;
    } else if (knob_is(knob, "clear_bursts", matched)) {
      if (knob.second != 0.0) config.workload.bursts.clear();
    } else if (knob_is(knob, "anchor_multiplier", matched)) {
      config.workload.urgent_anchor_sat_vb *= knob.second;
      config.workload.normal_anchor_sat_vb *= knob.second;
      config.workload.patient_anchor_sat_vb *= knob.second;
    } else if (knob_is(knob, "evasion_theta", matched)) {
      // The adversary-zoo evasion sweep: every selfish pool throttles its
      // own-wallet boosts to intensity theta instead. Collusion is
      // cleared like selfish=0, so theta=0 is byte-identical to the
      // honest control and shares its materialized world bytes.
      for (auto& pool : config.pools) {
        if (!pool.selfish) continue;
        pool.selfish = false;
        pool.accelerates_for.clear();
        pool.evasion_theta = knob.second;
      }
    } else if (knob_is(knob, "withhold_delay_s", matched)) {
      // Applies to the misbehaving pools (selfish or evasive). Knobs are
      // applied in sorted-name order, so "evasion_theta" has already
      // converted selfish pools when both are set — the composition is
      // insertion-order independent.
      for (auto& pool : config.pools) {
        if (pool.selfish || pool.evasion_theta >= 0.0) {
          pool.withhold_delay_s = knob.second;
        }
      }
    } else if (knob_is(knob, "fair_queue", matched)) {
      if (knob.second != 0.0) {
        for (auto& pool : config.pools) pool.fair_queue = true;
      }
    } else if (knob_is(knob, "fee_only", matched)) {
      config.fee_only = knob.second != 0.0;
    }
    if (!matched && knob.first != "utilization") {
      throw std::invalid_argument("WorldSpec: unknown knob '" + knob.first +
                                  "' (cache would silently serve the wrong world)");
    }
  }
  // Last: the arrival rate reads the (possibly overridden) block budget
  // and anchors only through rate_for_utilization's capacity math.
  if (const auto u = knob("utilization")) {
    config.workload.base_tx_per_second = rate_for_utilization(config, *u);
  }
  return config;
}

WorldSpec baseline_spec(DatasetKind kind, std::uint64_t seed, double scale) {
  WorldSpec spec;
  spec.kind = kind;
  spec.seed = seed;
  spec.scale = scale;
  spec.scenario = "baseline";
  return spec;
}

}  // namespace cn::sim

// Mining pools: hash share, reward wallets, coinbase marker, and the
// policy stack that shapes how the pool fills blocks.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "btc/block.hpp"
#include "btc/coinbase_tags.hpp"
#include "node/block_template.hpp"
#include "node/legacy_priority.hpp"
#include "sim/policy.hpp"

namespace cn::sim {

/// Which base template algorithm the pool's software runs.
enum class BuilderKind {
  kGbt,             ///< fee-rate / ancestor-package ordering (post-Apr-2016)
  kLegacyPriority,  ///< coin-age priority ordering (pre-Apr-2016)
};

/// Declarative description of a pool; the simulator turns this into a
/// MiningPool. This is what dataset builders configure.
struct PoolSpec {
  std::string name;
  double hash_share = 0.0;         ///< normalized mining power
  std::size_t wallet_count = 3;    ///< reward/payout wallets the pool owns
  BuilderKind builder = BuilderKind::kGbt;
  std::int64_t min_rate_sat_per_vb = btc::kDefaultMinRelaySatPerVb;
  /// Aging bonus for GBT ordering (0 = pure fee-rate norm; see
  /// node::TemplateOptions::age_weight_per_hour).
  double age_weight_per_hour = 0.0;

  /// Relative intensity of the pool's own payout/deposit transaction
  /// issuance. In the real data this is NOT proportional to hash share —
  /// SlushPool (3.75% of blocks) had the paper's largest self-interest
  /// c-block count (y = 1343). The engine weights self-interest tx
  /// generation by hash_share * self_tx_weight.
  double self_tx_weight = 1.0;

  bool selfish = false;                       ///< boosts own-wallet txs
  /// Evasion-aware self-interest intensity (adversary zoo): boosts each
  /// own-wallet tx with probability theta. Negative (default) = policy
  /// absent; 0 attaches the policy but is byte-identical to honest;
  /// 1 is byte-identical to `selfish`. Mutually composable with
  /// `selfish` but dataset builders set one or the other.
  double evasion_theta = -1.0;
  /// Selfish-mining block withholding: published blocks exclude
  /// transactions first broadcast within the last `withhold_delay_s`
  /// seconds (the template was frozen that long ago). 0 = honest.
  double withhold_delay_s = 0.0;
  /// BitcoinF-style fair queue: FIFO ordering above the relay floor.
  bool fair_queue = false;
  std::vector<std::string> accelerates_for;   ///< collusion partners
  bool offers_acceleration = false;           ///< sells dark-fee service
  /// Probability per block of a one-off, off-the-books boost of a random
  /// low-fee pending tx (see CourtesyBoostPolicy). 0 disables.
  double courtesy_boost_per_block = 0.0;
  bool tolerates_low_fee = false;             ///< sporadically lifts floor
  std::vector<btc::Address> censored_wallets; ///< refuses these (ablation)

  /// Pools that lost their marker (the paper's ~1.3% unidentified blocks)
  /// write an empty coinbase tag.
  bool anonymous = false;
};

class MiningPool {
 public:
  explicit MiningPool(const PoolSpec& spec);

  MiningPool(MiningPool&&) = default;
  MiningPool& operator=(MiningPool&&) = default;

  const std::string& name() const noexcept { return spec_.name; }
  double hash_share() const noexcept { return spec_.hash_share; }
  const PoolSpec& spec() const noexcept { return spec_; }

  /// Coinbase marker written into mined blocks ("" when anonymous).
  std::string coinbase_tag() const;

  const std::vector<btc::Address>& wallets() const noexcept { return wallets_; }
  const std::unordered_set<btc::Address>& wallet_set() const noexcept {
    return wallet_set_;
  }

  /// Reward wallet for the next block (round-robin over the pool's
  /// wallets, as pools rotate payout addresses in practice).
  btc::Address next_reward_wallet();

  /// Builds this pool's block template from @p mempool.
  /// @p base_exclude — transactions this pool has not yet heard of
  /// (propagation); merged with any policy exclusions. Taken by value:
  /// the engine rebuilds the set per block anyway, so it is moved rather
  /// than copied into the template options.
  node::BlockTemplate build_template(
      const node::Mempool& mempool, const PolicyContext& ctx,
      std::unordered_set<btc::Txid> base_exclude) const;

  /// The policy stack (diagnostics).
  const std::vector<std::unique_ptr<MinerPolicy>>& policies() const noexcept {
    return policies_;
  }

 private:
  PoolSpec spec_;
  std::vector<btc::Address> wallets_;
  std::unordered_set<btc::Address> wallet_set_;
  std::vector<std::unique_ptr<MinerPolicy>> policies_;
  std::size_t next_wallet_ = 0;
};

}  // namespace cn::sim

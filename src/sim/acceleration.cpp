#include "sim/acceleration.hpp"

#include <algorithm>
#include <cmath>

namespace cn::sim {

btc::Satoshi AccelerationService::quote(const btc::Transaction& tx, Rng& rng) const {
  const double multiplier = rng.lognormal(model_.log_mu, model_.log_sigma);
  const double base = static_cast<double>(tx.fee().value);
  double fee = base * multiplier;
  if (fee < static_cast<double>(model_.min_fee_sat))
    fee = static_cast<double>(model_.min_fee_sat);
  // Cap to keep satoshi arithmetic sane on the extreme tail.
  constexpr double kCap = 1e13;  // 100k BTC
  if (fee > kCap) fee = kCap;
  return btc::Satoshi{static_cast<std::int64_t>(fee)};
}

void AccelerationService::accelerate(const btc::Txid& id, std::string pool,
                                     btc::Satoshi paid) {
  by_pool_[pool].insert(id);
  records_.emplace(id, AccelerationRecord{std::move(pool), paid});
}

bool AccelerationService::is_accelerated(const btc::Txid& id) const noexcept {
  return records_.contains(id);
}

std::vector<bool> AccelerationService::accelerated_mask(
    std::span<const btc::Txid> ids) const {
  std::vector<bool> out;
  out.reserve(ids.size());
  for (const btc::Txid& id : ids) out.push_back(records_.contains(id));
  return out;
}

std::vector<btc::Txid> AccelerationService::all_accelerated_sorted() const {
  std::vector<btc::Txid> out;
  out.reserve(records_.size());
  for (const auto& [id, record] : records_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<AccelerationRecord> AccelerationService::record_of(
    const btc::Txid& id) const {
  const auto it = records_.find(id);
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

const std::unordered_set<btc::Txid>& AccelerationService::accelerated_via(
    const std::string& pool) const {
  static const std::unordered_set<btc::Txid> kEmpty;
  const auto it = by_pool_.find(pool);
  return it == by_pool_.end() ? kEmpty : it->second;
}

btc::Satoshi AccelerationService::revenue_of(const std::string& pool) const {
  btc::Satoshi total{};
  const auto it = by_pool_.find(pool);
  if (it == by_pool_.end()) return total;
  for (const btc::Txid& id : it->second) {
    const auto rec = records_.find(id);
    if (rec != records_.end()) total += rec->second.paid;
  }
  return total;
}

}  // namespace cn::sim

// The discrete-event simulator that stands in for the live Bitcoin
// network: users broadcast transactions, the P2P layer delays them
// per-node, pools win blocks proportionally to hash share and fill them
// through their policy stacks, and an observer full node records 15 s
// Mempool snapshots — producing exactly the observables the paper's data
// sets contain.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <queue>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "btc/chain.hpp"
#include "btc/rewards.hpp"
#include "node/fee_estimator.hpp"
#include "node/observer.hpp"
#include "sim/acceleration.hpp"
#include "sim/network.hpp"
#include "sim/pool.hpp"
#include "sim/workload.hpp"
#include "util/pool_alloc.hpp"

namespace cn::sim {

struct EngineConfig {
  std::uint64_t seed = 1;
  SimTime duration = 7 * kDay;
  std::uint64_t genesis_height = 600'000;
  double mean_block_interval_s = 600.0;

  /// Block virtual-size budget, *including* the coinbase allowance.
  /// Scaled-down experiments shrink this (and with it, the congestion
  /// thresholds, which are always expressed relative to this budget).
  std::uint64_t max_block_vsize = 100'000;

  /// Probability a winning pool mines an empty (SPV) block.
  double empty_block_fraction = 0.005;

  /// Fee-only (zero-subsidy) regime: coinbase rewards carry only the
  /// collected fees, modelling the post-subsidy era the BitcoinF /
  /// fee-model papers study. Default off keeps the historical subsidy
  /// schedule (and byte-identical worlds).
  bool fee_only = false;

  std::vector<PoolSpec> pools;  ///< shares are normalized internally
  WorkloadConfig workload;

  /// Observer relay floor: 1 sat/vB reproduces data set A's node, 0
  /// reproduces data set B's (accept everything).
  std::int64_t observer_min_relay_sat_per_vb = btc::kDefaultMinRelaySatPerVb;

  PropagationModel propagation;
  QuoteModel quote_model;

  /// When false, every pool sees every pending transaction instantly
  /// (useful for isolating policy effects in tests).
  bool propagation_exclusion = true;

  /// Execution lanes: 0 = hardware concurrency, 1 = the serial engine
  /// (byte-identical to the seed implementation), N >= 2 = the sharded
  /// engine on N lanes. Sharded output depends only on (seed, sim_shards,
  /// barrier_window_s) — never on the lane count or scheduling — so any
  /// N >= 2 produces the same result, deterministically.
  unsigned threads = 1;

  /// Number of workload shards for the parallel engine (machine-
  /// independent; part of the deterministic configuration).
  std::uint32_t sim_shards = 8;

  /// Conservative time-window barrier width in seconds: shards generate
  /// independently within a window and synchronize only at its edge.
  SimTime barrier_window_s = 10;

  /// Wall-clock budget for run() in seconds; 0 = unlimited. A run that
  /// exceeds it stops at the next deadline check (every few thousand
  /// events serially; every window barrier sharded) and reports the
  /// overrun with partial-progress diagnostics in SimResult::timeout
  /// instead of hanging a batch job forever. The partial chain is
  /// returned as-is: internally consistent, just shorter than asked.
  double deadline_s = 0.0;
};

/// Diagnostics for a run cut short by EngineConfig::deadline_s.
struct SimTimeout {
  bool timed_out = false;       ///< the deadline fired
  double elapsed_s = 0.0;       ///< wall clock spent when it fired
  SimTime sim_time_reached = 0; ///< simulated progress at the cut
  SimTime sim_duration = 0;     ///< what was asked for (config.duration)
  std::uint64_t events_processed = 0;
  std::uint64_t blocks_committed = 0;

  /// One-line "deadline exceeded after Xs: reached t=A of B (N events,
  /// M blocks)" description for logs and CLI errors.
  std::string describe() const;
};

/// Everything a post-hoc audit can see, plus the simulator's ground truth
/// (which real auditors lack — used here to validate the detectors).
struct SimResult {
  EngineConfig config;
  btc::Chain chain;
  node::ObserverNode observer;
  AccelerationService acceleration;  ///< ground truth + public query API
  std::unordered_map<std::string, std::vector<btc::Address>> pool_wallets;
  btc::Address scam_address{};
  std::vector<btc::Txid> scam_txids;
  std::unordered_map<btc::Txid, SimTime> broadcast_time;
  std::uint64_t issued_count = 0;
  std::uint64_t rbf_replacements = 0;  ///< accepted fee bumps
  SimTimeout timeout;  ///< set when config.deadline_s fired mid-run
};

class Engine {
 public:
  explicit Engine(EngineConfig config);

  /// Runs the simulation to completion and returns the result.
  /// May be called once.
  SimResult run();

 private:
  struct Event {
    SimTime time = 0;
    std::uint64_t seq = 0;  ///< FIFO tie-break for equal times
    enum class Kind { kTxIssue, kObserverDeliver, kBlockFound, kSnapshot } kind{};
    /// Payload for kObserverDeliver.
    btc::Txid txid{};
    bool operator>(const Event& o) const noexcept {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  void schedule(SimTime time, Event::Kind kind, const btc::Txid& txid = {});
  void handle_tx_issue(SimTime now);
  /// Shared broadcast path: canonical acceptance, observer delivery
  /// scheduling, and audit bookkeeping. Returns false when the canonical
  /// mempool rejected the transaction (e.g. an under-paying RBF bump).
  bool broadcast_tx(btc::Transaction tx, SimTime now);
  /// A pending low-fee transaction the issuing user may fee-bump.
  const btc::Transaction* pick_rbf_original();
  void handle_block_found(SimTime now);
  void refresh_fee_percentiles();
  std::size_t pick_winner();
  const btc::Transaction* pick_cpfp_parent();
  void request_acceleration(const btc::Transaction& tx);
  /// Drops exclusion-window expirees from recent_broadcasts_ (and the
  /// mirror hash set); amortized O(1) when called once per event.
  void prune_recent_broadcasts(SimTime now);
  /// Builds the propagation-exclusion set for @p winner at @p now.
  std::unordered_set<btc::Txid> propagation_exclude(SimTime now,
                                                    const MiningPool& winner);
  /// Everything after block selection: coinbase, mempool eviction,
  /// estimator update, chain append. Returns the mined txids. The serial
  /// path also feeds the observer; the sharded merge ships the ids to the
  /// observer lane instead.
  std::vector<btc::Txid> commit_block(SimTime now, MiningPool& winner,
                                      node::BlockTemplate tpl,
                                      bool feed_observer);

  /// Today's single-threaded event loop (byte-identical to the seed
  /// engine) and the sharded windowed engine. Both leave their results in
  /// the member state consumed by run().
  void run_serial();
  void run_sharded(unsigned lanes);
  void flush_sim_metrics();

  EngineConfig config_;
  Rng rng_workload_;
  Rng rng_blocks_;
  Rng rng_misc_;

  WorkloadGenerator workload_;
  std::vector<MiningPool> pools_;
  std::vector<double> pool_weights_;
  std::vector<double> payout_weights_;  ///< share * self_tx_weight
  std::vector<std::size_t> accel_pool_indices_;  ///< pools selling service
  node::Mempool canonical_;  ///< the union view (no floor)
  node::ObserverNode observer_;
  node::FeeEstimator estimator_;
  AccelerationService acceleration_;
  btc::Chain chain_;

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  std::uint64_t next_seq_ = 0;

  /// Transactions pending observer delivery, by txid. Node allocations
  /// come from a slab arena (util::SlabAllocator): the map churns one
  /// node per issued transaction, and the freelist turns that steady
  /// insert/erase traffic into pointer pushes instead of heap calls.
  std::unordered_map<
      btc::Txid, btc::Transaction, std::hash<btc::Txid>,
      std::equal_to<btc::Txid>,
      util::SlabAllocator<std::pair<const btc::Txid, btc::Transaction>>>
      in_flight_to_observer_;
  /// Recently broadcast txids (for propagation exclusion at block time),
  /// pruned once per event; the hash set mirrors the deque for O(1)
  /// membership checks.
  std::deque<std::pair<SimTime, btc::Txid>> recent_broadcasts_;
  std::unordered_set<btc::Txid> recent_broadcast_set_;
  /// Candidate CPFP parents (pending, low fee).
  std::deque<btc::Txid> cpfp_candidates_;
  /// Candidates for owner fee bumps (pending, low fee).
  std::deque<btc::Txid> rbf_candidates_;

  double rec_p25_ = 1.0, rec_p50_ = 2.0, rec_p75_ = 4.0;
  std::uint64_t height_ = 0;
  btc::Address scam_address_{};
  std::vector<btc::Txid> scam_txids_;
  std::unordered_map<btc::Txid, SimTime> broadcast_time_;
  std::uint64_t issued_count_ = 0;
  std::uint64_t rbf_replacements_ = 0;
  bool ran_ = false;

  /// Wall-clock deadline bookkeeping (config_.deadline_s).
  /// deadline_check() is called periodically by both engines; it stamps
  /// timeout_ and returns true once the budget is spent.
  bool deadline_check(SimTime sim_now);
  std::chrono::steady_clock::time_point run_start_{};
  SimTimeout timeout_;

  /// Batched sim telemetry (flushed to cn::obs once per run, keeping the
  /// instrumentation overhead far under the 2% gate).
  std::uint64_t stat_events_ = 0;          ///< events processed
  std::uint64_t stat_messages_ = 0;        ///< cross-shard messages merged
  std::uint64_t stat_barriers_ = 0;        ///< window barrier waits
  std::uint64_t stat_rbf_decisions_ = 0;   ///< RBF bump attempts
  std::uint64_t stat_cpfp_decisions_ = 0;  ///< CPFP parent picks
};

}  // namespace cn::sim

#include "sim/engine.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/registry.hpp"
#include "sim/shard.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace cn::sim {

namespace {

std::uint64_t congestion_unit(const EngineConfig& config) {
  // Congestion bins are defined relative to the block budget (in the real
  // network: 1 MB). Scaled-down experiments scale the thresholds with it.
  return config.max_block_vsize;
}

node::CongestionLevel scaled_congestion(std::uint64_t pending_vsize,
                                        const EngineConfig& config) {
  const std::uint64_t unit = congestion_unit(config);
  if (pending_vsize <= unit) return node::CongestionLevel::kNone;
  if (pending_vsize <= 2 * unit) return node::CongestionLevel::kLow;
  if (pending_vsize <= 4 * unit) return node::CongestionLevel::kMedium;
  return node::CongestionLevel::kHigh;
}

/// Engine telemetry (DESIGN.md §10/§12), interned once per process and
/// fed from batched per-run tallies so the hot loop never touches the
/// registry.
struct SimMetrics {
  obs::Counter events{"sim.engine.events"};
  obs::Counter messages{"sim.engine.cross_shard_messages"};
  obs::Counter barriers{"sim.engine.barrier_waits"};
  obs::Counter rbf{"sim.engine.rbf_decisions"};
  obs::Counter cpfp{"sim.engine.cpfp_decisions"};
};

SimMetrics& sim_metrics() {
  static SimMetrics* m = new SimMetrics();
  return *m;
}

}  // namespace

Engine::Engine(EngineConfig config)
    : config_(std::move(config)),
      rng_workload_(Rng(config_.seed).fork("workload")),
      rng_blocks_(Rng(config_.seed).fork("blocks")),
      rng_misc_(Rng(config_.seed).fork("misc")),
      workload_(config_.workload, rng_workload_.fork("txgen")),
      canonical_(/*min_relay_sat_per_vb=*/0),
      observer_(config_.observer_min_relay_sat_per_vb),
      estimator_(/*window_blocks=*/6),
      acceleration_(config_.quote_model),
      chain_(config_.genesis_height) {
  CN_ASSERT(!config_.pools.empty());
  CN_ASSERT(config_.max_block_vsize > btc::kCoinbaseVsize);
  CN_ASSERT(config_.max_block_vsize <= btc::kMaxBlockVsize);

  double total_share = 0.0;
  for (const PoolSpec& spec : config_.pools) {
    CN_ASSERT(spec.hash_share > 0.0);
    total_share += spec.hash_share;
    pools_.emplace_back(spec);
  }
  for (std::size_t i = 0; i < pools_.size(); ++i) {
    pool_weights_.push_back(pools_[i].hash_share() / total_share);
    payout_weights_.push_back(pool_weights_.back() * pools_[i].spec().self_tx_weight);
    if (pools_[i].spec().offers_acceleration) accel_pool_indices_.push_back(i);
  }
  height_ = config_.genesis_height;
  if (config_.workload.scam.has_value()) {
    scam_address_ = btc::Address::derive("scam/twitter-wallet");
  }
}

void Engine::schedule(SimTime time, Event::Kind kind, const btc::Txid& txid) {
  queue_.push(Event{time, next_seq_++, kind, txid});
}

std::size_t Engine::pick_winner() {
  return rng_blocks_.weighted_index(pool_weights_);
}

const btc::Transaction* Engine::pick_cpfp_parent() {
  while (!cpfp_candidates_.empty()) {
    // Prefer older stuck parents (front) with a light random skip so not
    // every child picks the same parent.
    const std::size_t idx =
        cpfp_candidates_.size() <= 1
            ? 0
            : static_cast<std::size_t>(rng_misc_.uniform_below(
                  std::min<std::uint64_t>(cpfp_candidates_.size(), 8)));
    const btc::Txid id = cpfp_candidates_[idx];
    const node::MempoolEntry* entry = canonical_.find(id);
    if (entry == nullptr) {
      cpfp_candidates_.erase(cpfp_candidates_.begin() +
                             static_cast<std::ptrdiff_t>(idx));
      continue;
    }
    // One child per parent: retire the candidate once used.
    cpfp_candidates_.erase(cpfp_candidates_.begin() +
                           static_cast<std::ptrdiff_t>(idx));
    ++stat_cpfp_decisions_;
    return &entry->tx;
  }
  return nullptr;
}

void Engine::request_acceleration(const btc::Transaction& tx) {
  if (accel_pool_indices_.empty()) return;
  // Users pick a service roughly proportionally to pool prominence.
  std::vector<double> weights;
  weights.reserve(accel_pool_indices_.size());
  for (std::size_t i : accel_pool_indices_) weights.push_back(pools_[i].hash_share());
  const std::size_t choice = rng_misc_.weighted_index(weights);
  const MiningPool& pool = pools_[accel_pool_indices_[choice]];
  const btc::Satoshi paid = acceleration_.quote(tx, rng_misc_);
  acceleration_.accelerate(tx.id(), pool.name(), paid);
}

const btc::Transaction* Engine::pick_rbf_original() {
  while (!rbf_candidates_.empty()) {
    const btc::Txid id = rbf_candidates_.front();
    rbf_candidates_.pop_front();
    const node::MempoolEntry* entry = canonical_.find(id);
    if (entry != nullptr) return &entry->tx;
  }
  return nullptr;
}

bool Engine::broadcast_tx(btc::Transaction tx, SimTime now) {
  const btc::Txid id = tx.id();
  const auto verdict = canonical_.accept(std::move(tx), now);
  if (verdict != node::AcceptResult::kAccepted) return false;

  ++issued_count_;
  broadcast_time_.emplace(id, now);
  // The hash set mirrors the deque (O(1) membership); every accepted
  // broadcast is a fresh txid, so insert cannot collide with a live
  // entry.
  if (recent_broadcast_set_.insert(id).second) {
    recent_broadcasts_.emplace_back(now, id);
  }

  const node::MempoolEntry* entry = canonical_.find(id);
  CN_ASSERT(entry != nullptr);
  in_flight_to_observer_.emplace(id, entry->tx);
  schedule(config_.propagation.arrival(id, kObserverNode, now),
           Event::Kind::kObserverDeliver, id);
  return true;
}

void Engine::handle_tx_issue(SimTime now) {
  WorkloadContext ctx;
  ctx.rec_p25 = rec_p25_;
  ctx.rec_p50 = rec_p50_;
  ctx.rec_p75 = rec_p75_;
  ctx.congestion = scaled_congestion(canonical_.total_vsize(), config_);

  // Replace-by-fee branch: an impatient user bumps their stuck payment
  // instead of issuing a new one.
  if (rng_misc_.chance(config_.workload.rbf_fraction)) {
    if (const btc::Transaction* original = pick_rbf_original()) {
      ++stat_rbf_decisions_;
      const std::uint64_t replaced_before = canonical_.replaced_count();
      btc::Transaction bump = workload_.make_rbf_replacement(now, *original, ctx);
      // `original` is invalidated by the accept below; do not touch it after.
      if (broadcast_tx(std::move(bump), now) &&
          canonical_.replaced_count() > replaced_before) {
        ++rbf_replacements_;
      }
      const SimTime next_rbf = workload_.next_arrival(now);
      if (next_rbf <= config_.duration) schedule(next_rbf, Event::Kind::kTxIssue);
      return;
    }
  }

  const double rate_now = std::max(workload_.rate_at(now), 1e-9);

  // Special-class coin flips (rates expressed per block / per hour are
  // converted to per-issue probabilities at the current arrival rate).
  const double p_self = config_.workload.self_interest_per_block /
                        (config_.mean_block_interval_s * rate_now);
  ctx.make_self_interest = rng_misc_.chance(std::min(p_self, 0.5));
  if (ctx.make_self_interest) {
    // Payout volume scales with size modulated by the pool's configured
    // intensity (real pools differ wildly here — see PoolSpec).
    const std::size_t pool_idx = rng_misc_.weighted_index(payout_weights_);
    const auto& wallets = pools_[pool_idx].wallets();
    ctx.pool_wallet = wallets[rng_misc_.uniform_below(wallets.size())];
  } else if (config_.workload.scam.has_value()) {
    const ScamConfig& scam = *config_.workload.scam;
    if (now >= scam.start && now < scam.end) {
      const double p_scam = scam.txs_per_hour / (3600.0 * rate_now);
      ctx.make_scam = rng_misc_.chance(std::min(p_scam, 0.5));
      ctx.scam_address = scam_address_;
    }
  }
  if (!ctx.make_self_interest && !ctx.make_scam) {
    ctx.cpfp_parent = pick_cpfp_parent();
  }

  GeneratedTx generated = workload_.make_transaction(now, ctx);
  const btc::Txid id = generated.tx.id();
  const bool ordinary = !generated.is_scam && !generated.is_self_interest &&
                        !generated.used_cpfp_parent;
  const bool low_fee = generated.tx.fee_rate().sat_per_vbyte() < rec_p50_;

  if (generated.is_scam) scam_txids_.push_back(id);
  if (generated.wants_acceleration) request_acceleration(generated.tx);

  const bool accepted = broadcast_tx(std::move(generated.tx), now);
  CN_ASSERT(accepted);  // fresh payments never conflict

  // Low-fee ordinary txs become future CPFP parents or RBF bump targets.
  if (ordinary && low_fee) {
    if (cpfp_candidates_.size() < 512) cpfp_candidates_.push_back(id);
    if (rbf_candidates_.size() < 256) rbf_candidates_.push_back(id);
  }

  // Next arrival.
  const SimTime next = workload_.next_arrival(now);
  if (next <= config_.duration) schedule(next, Event::Kind::kTxIssue);
}

void Engine::refresh_fee_percentiles() {
  if (estimator_.sample_count() == 0) return;
  rec_p25_ = std::max(estimator_.recommend_sat_per_vb(0.25), 1.0);
  rec_p50_ = std::max(estimator_.recommend_sat_per_vb(0.50), 1.0);
  rec_p75_ = std::max(estimator_.recommend_sat_per_vb(0.75), 1.0);
}

void Engine::prune_recent_broadcasts(SimTime now) {
  // Same expiry predicate the seed engine applied at block time; pruning
  // at every event is safe because event times are non-decreasing and
  // expired entries can never be excluded (their arrival is in the past).
  const auto cap = static_cast<SimTime>(config_.propagation.cap_seconds) + 1;
  while (!recent_broadcasts_.empty() &&
         recent_broadcasts_.front().first + cap < now) {
    recent_broadcast_set_.erase(recent_broadcasts_.front().second);
    recent_broadcasts_.pop_front();
  }
}

std::unordered_set<btc::Txid> Engine::propagation_exclude(
    SimTime now, const MiningPool& winner) {
  // Exclude transactions this pool has not yet heard of. The deque holds
  // only still-recent broadcasts (pruned once per event), so this scan is
  // bounded by the propagation cap window, not the run length.
  std::unordered_set<btc::Txid> exclude;
  if (!config_.propagation_exclusion) return exclude;
  for (const auto& [t_broadcast, id] : recent_broadcasts_) {
    if (!canonical_.contains(id)) continue;
    if (config_.propagation.arrival(id, winner.name(), t_broadcast) > now) {
      exclude.insert(id);
    }
  }
  return exclude;
}

std::vector<btc::Txid> Engine::commit_block(SimTime now, MiningPool& winner,
                                            node::BlockTemplate tpl,
                                            bool feed_observer) {
  btc::Coinbase coinbase;
  coinbase.tag = winner.coinbase_tag();
  coinbase.reward_address = winner.next_reward_wallet();
  coinbase.reward = (config_.fee_only ? btc::Satoshi{}
                                      : btc::block_subsidy(height_)) +
                    tpl.total_fees;

  std::vector<btc::Txid> mined;
  mined.reserve(tpl.txs.size());
  for (const btc::Transaction& tx : tpl.txs) {
    mined.push_back(tx.id());
    canonical_.remove(tx.id());
  }

  btc::Block block(height_, now, std::move(coinbase), std::move(tpl.txs));
  if (feed_observer) observer_.on_block(block);
  estimator_.on_block(block);
  refresh_fee_percentiles();
  chain_.append(std::move(block));
  ++height_;
  return mined;
}

void Engine::handle_block_found(SimTime now) {
  MiningPool& winner = pools_[pick_winner()];

  node::BlockTemplate tpl;
  if (!rng_blocks_.chance(config_.empty_block_fraction)) {
    std::unordered_set<btc::Txid> exclude = propagation_exclude(now, winner);

    PolicyContext ctx;
    ctx.now = now;
    ctx.height = height_;
    ctx.max_template_vsize = config_.max_block_vsize - btc::kCoinbaseVsize;
    ctx.pool_name = winner.name();
    ctx.own_wallets = &winner.wallet_set();
    for (const std::string& partner : winner.spec().accelerates_for) {
      for (const MiningPool& other : pools_) {
        if (other.name() == partner) ctx.partner_wallets.push_back(&other.wallet_set());
      }
    }
    if (winner.spec().offers_acceleration) ctx.acceleration = &acceleration_;
    ctx.broadcast_time = &broadcast_time_;

    tpl = winner.build_template(canonical_, ctx, std::move(exclude));
  }

  commit_block(now, winner, std::move(tpl), /*feed_observer=*/true);

  const auto gap = static_cast<SimTime>(
      rng_blocks_.exponential(1.0 / config_.mean_block_interval_s) + 0.5);
  const SimTime next = now + std::max<SimTime>(gap, 1);
  if (next <= config_.duration) schedule(next, Event::Kind::kBlockFound);
}

std::string SimTimeout::describe() const {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "deadline exceeded after %.1fs: reached t=%lld of %lld "
                "(%llu events, %llu blocks)",
                elapsed_s, static_cast<long long>(sim_time_reached),
                static_cast<long long>(sim_duration),
                static_cast<unsigned long long>(events_processed),
                static_cast<unsigned long long>(blocks_committed));
  return buf;
}

bool Engine::deadline_check(SimTime sim_now) {
  if (config_.deadline_s <= 0.0 || timeout_.timed_out) return timeout_.timed_out;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - run_start_)
          .count();
  if (elapsed < config_.deadline_s) return false;
  timeout_.timed_out = true;
  timeout_.elapsed_s = elapsed;
  timeout_.sim_time_reached = sim_now;
  timeout_.sim_duration = config_.duration;
  timeout_.events_processed = stat_events_;
  timeout_.blocks_committed = chain_.size();
  return true;
}

void Engine::run_serial() {
  schedule(workload_.next_arrival(0), Event::Kind::kTxIssue);
  const auto first_gap = static_cast<SimTime>(
      rng_blocks_.exponential(1.0 / config_.mean_block_interval_s) + 0.5);
  schedule(std::max<SimTime>(first_gap, 1), Event::Kind::kBlockFound);
  schedule(kSnapshotInterval, Event::Kind::kSnapshot);

  // The deadline is checked on a coarse event stride: cheap enough to
  // leave enabled, fine-grained enough to stop within a fraction of a
  // second of the budget.
  constexpr std::uint64_t kDeadlineStride = 4096;

  while (!queue_.empty()) {
    const Event ev = queue_.top();
    queue_.pop();
    if (ev.time > config_.duration) continue;
    ++stat_events_;
    if (stat_events_ % kDeadlineStride == 0 && deadline_check(ev.time)) break;
    prune_recent_broadcasts(ev.time);
    switch (ev.kind) {
      case Event::Kind::kTxIssue:
        handle_tx_issue(ev.time);
        break;
      case Event::Kind::kObserverDeliver: {
        const auto it = in_flight_to_observer_.find(ev.txid);
        if (it != in_flight_to_observer_.end()) {
          // Deliver even if a pool has already mined it (the real network
          // gossips both ways); the observer prunes on the block event,
          // which it processes when the block reaches it.
          if (!chain_.locate(ev.txid).has_value()) {
            observer_.on_transaction(std::move(it->second), ev.time);
          }
          in_flight_to_observer_.erase(it);
        }
        break;
      }
      case Event::Kind::kBlockFound:
        handle_block_found(ev.time);
        break;
      case Event::Kind::kSnapshot:
        observer_.record_snapshot(ev.time);
        if (ev.time + kSnapshotInterval <= config_.duration) {
          schedule(ev.time + kSnapshotInterval, Event::Kind::kSnapshot);
        }
        break;
    }
  }
}

void Engine::run_sharded(unsigned lanes) {
  util::ThreadPool pool(lanes);
  const std::uint32_t shard_count = std::max<std::uint32_t>(config_.sim_shards, 1);
  const SimTime window = std::max<SimTime>(config_.barrier_window_s, 1);
  const SimTime end = config_.duration + 1;  // exclusive event horizon

  std::vector<ShardLane> shards;
  shards.reserve(shard_count);
  for (std::uint32_t s = 0; s < shard_count; ++s) {
    shards.emplace_back(s, config_, &pools_, &payout_weights_, scam_address_,
                        shard_count);
  }
  std::vector<std::vector<ShardMsg>> inbox(shard_count);

  // Observer lane: replays the observer's event stream one window behind,
  // overlapped with the next window's generation phase.
  ObserverLane obs_lane(&observer_);
  std::vector<ObserverOp> obs_batch;      // assembled by the current merge
  std::vector<ObserverOp> obs_in_flight;  // being applied by the lane
  std::uint64_t obs_seq = 0;

  // Pending observer deliveries, bucketed by target window — the
  // calendar queue that replaces the serial engine's global
  // priority_queue. Arrival lags broadcast by at most the propagation
  // cap, so a small ring suffices.
  const auto cap = static_cast<SimTime>(config_.propagation.cap_seconds) + 1;
  const std::size_t ring = static_cast<std::size_t>(cap / window) + 3;
  std::vector<std::vector<ObserverOp>> deliveries(ring);

  // Merge-owned clocks, drawn from the same streams as the serial path.
  const auto first_gap = static_cast<SimTime>(
      rng_blocks_.exponential(1.0 / config_.mean_block_interval_s) + 0.5);
  SimTime next_block = std::max<SimTime>(first_gap, 1);
  SimTime next_snapshot = kSnapshotInterval;

  const auto delivery_order = [](const ObserverOp& a, const ObserverOp& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  };

  for (SimTime t0 = 0; t0 < end; t0 += window) {
    if (deadline_check(t0)) break;
    const SimTime t1 = std::min<SimTime>(t0 + window, end);
    ++stat_barriers_;

    WindowContext wctx;
    wctx.rec_p25 = rec_p25_;
    wctx.rec_p50 = rec_p50_;
    wctx.rec_p75 = rec_p75_;
    wctx.congestion = scaled_congestion(canonical_.total_vsize(), config_);

    // Parallel phase: shard generation lanes plus the observer lane. The
    // implicit barrier at the end of parallel_for is the only
    // cross-shard synchronization point; every lane writes its own slot.
    std::swap(obs_in_flight, obs_batch);
    obs_batch.clear();
    pool.parallel_for(shard_count + 1, [&](std::size_t i) {
      if (i < shard_count) {
        inbox[i].clear();
        shards[i].generate(t0, t1, wctx, canonical_, inbox[i]);
      } else {
        obs_lane.apply(obs_in_flight);
      }
    });

    // Serial merge phase: apply this window's events in global time
    // order. Equal times break by a fixed kind priority (deliveries, tx
    // messages by shard id, block, snapshot) — arbitrary but part of the
    // determinism contract.
    std::vector<ObserverOp>& due = deliveries[(t0 / window) % ring];
    std::sort(due.begin(), due.end(), delivery_order);
    std::size_t di = 0;
    std::vector<std::size_t> cur(shard_count, 0);

    while (true) {
      SimTime best_time = 0;
      int best_kind = -1;  // 0=delivery 1=tx-msg 2=block 3=snapshot
      std::size_t best_shard = 0;
      const auto consider = [&](SimTime t, int kind, std::size_t shard) {
        if (best_kind < 0 || t < best_time) {
          best_time = t;
          best_kind = kind;
          best_shard = shard;
        }
      };
      if (di < due.size()) consider(due[di].time, 0, 0);
      for (std::size_t s = 0; s < shard_count; ++s) {
        if (cur[s] < inbox[s].size()) consider(inbox[s][cur[s]].time, 1, s);
      }
      if (next_block < end) consider(next_block, 2, 0);
      if (next_snapshot < end) consider(next_snapshot, 3, 0);
      if (best_kind < 0 || best_time >= t1) break;

      ++stat_events_;
      prune_recent_broadcasts(best_time);

      switch (best_kind) {
        case 0: {  // observer delivery comes due
          obs_batch.push_back(std::move(due[di]));
          ++di;
          break;
        }
        case 1: {  // cross-shard tx message
          ShardMsg& m = inbox[best_shard][cur[best_shard]++];
          ++stat_messages_;
          const btc::Txid id = m.tx.id();
          if (m.wants_acceleration) request_acceleration(m.tx);
          if (m.is_scam) scam_txids_.push_back(id);
          const std::uint64_t replaced_before = canonical_.replaced_count();
          const auto verdict = canonical_.accept(std::move(m.tx), m.time);
          if (verdict != node::AcceptResult::kAccepted) {
            // Only an under-paying RBF bump can be rejected: funding
            // nonces are disjoint across shards and CPFP parents are
            // retired on use, so fresh payments never conflict.
            CN_ASSERT(m.is_rbf_bump);
            break;
          }
          ++issued_count_;
          broadcast_time_.emplace(id, m.time);
          if (recent_broadcast_set_.insert(id).second) {
            recent_broadcasts_.emplace_back(m.time, id);
          }
          if (m.is_rbf_bump &&
              canonical_.replaced_count() > replaced_before) {
            ++rbf_replacements_;
          }
          if (m.low_fee_ordinary) shards[best_shard].note_candidate(id);

          const SimTime arrival =
              config_.propagation.arrival(id, kObserverNode, m.time);
          if (arrival <= config_.duration) {
            ObserverOp op;
            op.time = arrival;
            op.seq = obs_seq++;
            op.kind = ObserverOp::Kind::kDeliver;
            op.tx = canonical_.find(id)->tx;
            if (arrival < t1) {
              // Due later in this same window: keep `due` sorted.
              const auto pos = std::upper_bound(due.begin() + di, due.end(),
                                                op, delivery_order);
              due.insert(pos, std::move(op));
            } else {
              deliveries[(arrival / window) % ring].push_back(std::move(op));
            }
          }
          break;
        }
        case 2: {  // block found
          MiningPool& winner = pools_[pick_winner()];
          node::BlockTemplate tpl;
          if (!rng_blocks_.chance(config_.empty_block_fraction)) {
            std::unordered_set<btc::Txid> exclude =
                propagation_exclude(next_block, winner);
            PolicyContext ctx;
            ctx.now = next_block;
            ctx.height = height_;
            ctx.max_template_vsize =
                config_.max_block_vsize - btc::kCoinbaseVsize;
            ctx.pool_name = winner.name();
            ctx.own_wallets = &winner.wallet_set();
            for (const std::string& partner : winner.spec().accelerates_for) {
              for (const MiningPool& other : pools_) {
                if (other.name() == partner) {
                  ctx.partner_wallets.push_back(&other.wallet_set());
                }
              }
            }
            if (winner.spec().offers_acceleration) {
              ctx.acceleration = &acceleration_;
            }
            ctx.broadcast_time = &broadcast_time_;
            tpl = winner.build_template(canonical_, ctx, std::move(exclude));
          }
          std::vector<btc::Txid> mined =
              commit_block(next_block, winner, std::move(tpl),
                           /*feed_observer=*/false);
          if (!mined.empty()) {
            ObserverOp op;
            op.time = next_block;
            op.seq = obs_seq++;
            op.kind = ObserverOp::Kind::kBlock;
            op.mined = std::move(mined);
            obs_batch.push_back(std::move(op));
          }
          const auto gap = static_cast<SimTime>(
              rng_blocks_.exponential(1.0 / config_.mean_block_interval_s) +
              0.5);
          next_block += std::max<SimTime>(gap, 1);
          break;
        }
        case 3: {  // observer snapshot
          ObserverOp op;
          op.time = next_snapshot;
          op.seq = obs_seq++;
          op.kind = ObserverOp::Kind::kSnapshot;
          obs_batch.push_back(std::move(op));
          next_snapshot += kSnapshotInterval;
          break;
        }
      }
    }
    due.clear();
  }

  // Drain the final window's observer ops and fold in lane tallies.
  obs_lane.apply(obs_batch);
  for (const ShardLane& s : shards) {
    stat_cpfp_decisions_ += s.cpfp_picks();
    stat_rbf_decisions_ += s.rbf_attempts();
  }
}

void Engine::flush_sim_metrics() {
  SimMetrics& m = sim_metrics();
  m.events.add(stat_events_);
  m.messages.add(stat_messages_);
  m.barriers.add(stat_barriers_);
  m.rbf.add(stat_rbf_decisions_);
  m.cpfp.add(stat_cpfp_decisions_);
}

SimResult Engine::run() {
  CN_ASSERT(!ran_);
  ran_ = true;
  run_start_ = std::chrono::steady_clock::now();

  const unsigned lanes = util::resolve_threads(config_.threads);
  if (lanes <= 1 || config_.sim_shards <= 1) {
    run_serial();
  } else {
    run_sharded(lanes);
  }
  flush_sim_metrics();

  SimResult result;
  result.config = config_;
  result.chain = std::move(chain_);
  result.observer = std::move(observer_);
  result.acceleration = std::move(acceleration_);
  for (const MiningPool& pool : pools_) {
    result.pool_wallets.emplace(pool.name(), pool.wallets());
  }
  result.scam_address = scam_address_;
  result.scam_txids = std::move(scam_txids_);
  result.broadcast_time = std::move(broadcast_time_);
  result.issued_count = issued_count_;
  result.rbf_replacements = rbf_replacements_;
  result.timeout = timeout_;
  return result;
}

}  // namespace cn::sim

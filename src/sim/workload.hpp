// Transaction workload generation.
//
// Users issue transactions as an inhomogeneous Poisson process (diurnal
// swing plus configurable burst events, like the June 2019 price-surge
// congestion in data set B). Fees follow the behaviour the paper
// documents in §4.1: users consult a recent-block fee estimator and scale
// their offer up under congestion; a small fraction issue below-floor or
// zero-fee transactions; ~20-26% are in-block CPFP children; pools issue
// their own payout ("self-interest") transactions; scam payments appear
// inside a configured window; and a sliver of users plan to pay a dark
// acceleration fee instead of a competitive public fee.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "btc/transaction.hpp"
#include "node/snapshot.hpp"
#include "util/rng.hpp"

namespace cn::sim {

struct BurstEvent {
  SimTime start = 0;
  SimTime duration = 0;
  double rate_multiplier = 1.0;  ///< applied to the base rate while active
};

struct ScamConfig {
  SimTime start = 0;
  SimTime end = 0;
  double txs_per_hour = 1.5;  ///< scam-payment arrival rate inside the window
};

struct WorkloadConfig {
  // Arrival process.
  double base_tx_per_second = 0.5;
  double diurnal_amplitude = 0.45;  ///< fraction of base; sinusoidal
  SimTime diurnal_period = kDay;
  std::vector<BurstEvent> bursts;

  // Size distribution (lognormal, clamped).
  double mean_tx_vsize = 275.0;
  double vsize_sigma = 0.45;
  std::uint32_t min_tx_vsize = 80;
  std::uint32_t max_tx_vsize = 12'000;

  // Value distribution (lognormal in satoshi).
  double mean_value_sat = 5e6;  // 0.05 BTC
  double value_sigma = 1.4;

  // Fee behaviour. Fees are anchored per urgency tier (sat/vB) and scale
  // exponentially with the congestion level; a *bounded* blend with the
  // recent-block estimator models wallet software without letting the
  // feedback loop run away.
  double urgent_fraction = 0.32;   ///< want next-block inclusion
  double patient_fraction = 0.22;  ///< content to wait many blocks
  double urgent_anchor_sat_vb = 10.0;
  double normal_anchor_sat_vb = 5.0;
  double patient_anchor_sat_vb = 1.5;
  double fee_noise_sigma = 0.50;   ///< lognormal noise on the fee target
  /// Congestion response: fee multiplier = exp(response * level) for the
  /// urgent tier (normal and patient tiers respond at 0.8x / 0.3x of
  /// this). This is the Fig 4c driver.
  double congestion_fee_response = 0.70;
  /// Exponent of the bounded estimator blend (0 disables feedback).
  double estimator_blend_exponent = 0.30;
  double below_floor_fraction = 0.0006;  ///< < 1 sat/vB offers
  double zero_fee_fraction_of_low = 0.45;

  // Dependent transactions.
  double cpfp_fraction = 0.30;      ///< children spending a pending parent
  /// Median multiple of the parent's rate a rescuing child pays; the
  /// realized boost is lognormal around this (heavy tail: a panicked
  /// 20-30x rescue drags a bottom-fee parent near the top of a block,
  /// producing the natural high-SPPE false positives of Table 4).
  double cpfp_rescue_boost = 3.0;
  double cpfp_boost_sigma = 1.5;

  // Replace-by-fee: fraction of issues that are fee bumps of the user's
  // own stuck transaction instead of fresh payments.
  double rbf_fraction = 0.02;
  double rbf_bump_min = 1.5;  ///< fee-rate multiple range for the bump
  double rbf_bump_max = 4.0;

  // Pool-involved and special transactions.
  double self_interest_per_block = 0.30;  ///< expected per block interval
  double accel_request_fraction = 0.004;  ///< of issued txs buy acceleration
  std::optional<ScamConfig> scam;

  std::size_t user_address_count = 20'000;
};

/// What the generator needs to know about the world at issue time.
struct WorkloadContext {
  double rec_p25 = 1.0;  ///< recent-block fee-rate percentiles (sat/vB)
  double rec_p50 = 2.0;
  double rec_p75 = 4.0;
  node::CongestionLevel congestion = node::CongestionLevel::kNone;
  /// A still-pending low-fee transaction usable as a CPFP parent, if any.
  const btc::Transaction* cpfp_parent = nullptr;
  /// Pool payout endpoint for self-interest txs (chosen by the engine).
  btc::Address pool_wallet{};
  bool make_self_interest = false;
  bool make_scam = false;
  btc::Address scam_address{};
};

struct GeneratedTx {
  btc::Transaction tx;
  bool wants_acceleration = false;  ///< user will pay a dark fee
  bool is_scam = false;
  bool is_self_interest = false;
  bool used_cpfp_parent = false;
};

class WorkloadGenerator {
 public:
  /// @p nonce_base offsets the per-transaction nonce counter. The sharded
  /// engine gives each shard a disjoint nonce range so the synthetic
  /// funding outpoints of different shards can never collide.
  WorkloadGenerator(WorkloadConfig config, Rng rng,
                    std::uint64_t nonce_base = 0);

  const WorkloadConfig& config() const noexcept { return config_; }

  /// Instantaneous arrival rate (tx/s) at time @p t.
  double rate_at(SimTime t) const noexcept;

  /// Peak rate over any time (for Poisson thinning).
  double max_rate() const noexcept;

  /// Samples the time of the next arrival strictly after @p now
  /// (inhomogeneous Poisson via thinning).
  SimTime next_arrival(SimTime now);

  /// Creates one transaction at @p now given the context.
  GeneratedTx make_transaction(SimTime now, const WorkloadContext& ctx);

  /// Creates a BIP-125 fee bump of the user's own stuck transaction:
  /// same inputs (conflicting), fee-rate raised to at least the current
  /// market rate or a multiple of the original, whichever is higher.
  btc::Transaction make_rbf_replacement(SimTime now,
                                        const btc::Transaction& original,
                                        const WorkloadContext& ctx);

 private:
  double fee_rate_target(const WorkloadContext& ctx);
  btc::Address random_user_address();

  WorkloadConfig config_;
  Rng rng_;
  std::uint64_t nonce_ = 0;
  /// User wallet pool, derived once up front: deriving an address is a
  /// SHA-256 + string build, far too hot to repeat per transaction.
  std::vector<btc::Address> user_addresses_;
  /// Continuous-time arrival clock; avoids the per-arrival rounding bias
  /// integer SimTime would otherwise introduce.
  double continuous_clock_ = 0.0;
};

}  // namespace cn::sim

#include "sim/network.hpp"

#include <cmath>
#include <string>

#include "util/rng.hpp"

namespace cn::sim {

SimTime PropagationModel::delay(const btc::Txid& tx, std::string_view node) const noexcept {
  // Deterministic per-(tx, node) uniform draw -> exponential tail.
  std::uint64_t state = tx.short_id() ^ stable_hash64(node);
  const std::uint64_t raw = splitmix64(state);
  const double u = static_cast<double>(raw >> 11) * 0x1.0p-53;
  const double safe_u = u <= 0.0 ? 0x1.0p-53 : u;
  double d = floor_seconds - mean_extra_seconds * std::log(safe_u);
  if (d > cap_seconds) d = cap_seconds;
  if (d < 0.0) d = 0.0;
  return static_cast<SimTime>(d + 0.5);
}

SimTime PropagationModel::arrival(const btc::Txid& tx, std::string_view node,
                                  SimTime broadcast) const noexcept {
  return broadcast + delay(tx, node);
}

}  // namespace cn::sim

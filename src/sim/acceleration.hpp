// Transaction-acceleration ("dark fee") services — the §5.4 subject.
//
// Several large pools sell off-chain acceleration: the user pays the pool
// out of band, and the pool prioritizes the transaction when it mines.
// The ledger below plays two roles:
//  * simulator ground truth: which transactions were accelerated, through
//    which pool, for how much — *never* visible on-chain;
//  * the public verification endpoint: BTC.com's service lets anyone ask
//    "was this txid accelerated?", which is exactly what the paper used to
//    validate its SPPE-based detector (Table 4). is_accelerated() models
//    that query.
//
// Quotes follow the empirical shape of Figure 14: the acceleration fee is
// a heavy-tailed multiple of the public fee (median ~117x, mean ~566x).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "btc/amount.hpp"
#include "btc/transaction.hpp"
#include "util/rng.hpp"

namespace cn::sim {

/// Parameters of the quote distribution (multiplier on the public fee).
struct QuoteModel {
  /// exp(mu) is the median multiplier; paper's Fig 14 reports ~116.64x.
  double log_mu = 4.7589;  // ln(116.64)
  /// Heavy tail: mean/median = exp(sigma^2/2) ≈ 4.85 reproduces the
  /// reported mean of ~566x.
  double log_sigma = 1.777;
  /// Quotes are floored at this many satoshi (services have a minimum).
  std::int64_t min_fee_sat = 10'000;
};

struct AccelerationRecord {
  std::string pool;     ///< pool whose service was paid
  btc::Satoshi paid{};  ///< dark fee, off-chain
};

class AccelerationService {
 public:
  explicit AccelerationService(QuoteModel model = {}) : model_(model) {}

  /// Price the service would charge to accelerate @p tx. Deterministic
  /// given the caller's RNG stream.
  btc::Satoshi quote(const btc::Transaction& tx, Rng& rng) const;

  /// Registers an accepted acceleration request.
  void accelerate(const btc::Txid& id, std::string pool, btc::Satoshi paid);

  /// Public query (the Table 4 validation path).
  bool is_accelerated(const btc::Txid& id) const noexcept;
  std::optional<AccelerationRecord> record_of(const btc::Txid& id) const;

  /// Bulk form of is_accelerated(): one flag per txid, in input order.
  /// The audit's Table 4 validation checks whole blocks of candidate
  /// txids at a time; answering them in one call keeps the per-query
  /// overhead out of the detector's hot loop.
  std::vector<bool> accelerated_mask(std::span<const btc::Txid> ids) const;

  /// All txids accelerated through @p pool's service (for the pool's own
  /// prioritization pass).
  const std::unordered_set<btc::Txid>& accelerated_via(const std::string& pool) const;

  std::size_t total_accelerated() const noexcept { return records_.size(); }

  /// Every accelerated txid, sorted by byte order — the deterministic
  /// export form a cached world stores (io::SimWorldInfo).
  std::vector<btc::Txid> all_accelerated_sorted() const;

  /// Total dark fees collected by @p pool (kept even if another pool
  /// mines the transaction — paper §5.4.1).
  btc::Satoshi revenue_of(const std::string& pool) const;

 private:
  QuoteModel model_;
  std::unordered_map<btc::Txid, AccelerationRecord> records_;
  std::unordered_map<std::string, std::unordered_set<btc::Txid>> by_pool_;
};

}  // namespace cn::sim

// WorldSpec — the content address of a simulated world.
//
// Every bench and sweep job describes the world it needs as a value:
// the data set, the seed, the scale, a scenario label, and a sorted
// list of named engine/policy knobs. The spec has a canonical
// little-endian byte serialization whose FNV-1a-64 digest is the
// world's *content address*: two specs with the same fingerprint
// materialize byte-identical CNB1 files (the engine is deterministic),
// so a cache keyed by fingerprint can hand every consumer the same
// world without re-simulating (io/world_cache.hpp).
//
// Invalidation rule (DESIGN.md §14): kWorldSpecVersion is part of the
// canonical bytes. Bump it whenever engine or dataset semantics change
// in a way that would make a cached world diverge from a fresh
// simulation of the same spec — every old cache entry then simply
// stops being addressed, rather than being silently wrong.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/dataset.hpp"

namespace cn::sim {

/// Serialization version of the spec -> world mapping. See the file
/// comment for when to bump it.
inline constexpr std::uint32_t kWorldSpecVersion = 1;

/// Stable one-letter data-set label ("A"/"B"/"C").
const char* dataset_kind_name(DatasetKind kind);

struct WorldSpec {
  DatasetKind kind = DatasetKind::kA;
  std::uint64_t seed = 42;
  double scale = 1.0;
  /// Scenario label; "baseline" is the unmodified dataset_config().
  /// Part of the content address, so benches that want to SHARE a world
  /// must agree on the label, not just the knobs.
  std::string scenario = "baseline";
  /// Named engine/policy deviations from dataset_config(), kept sorted
  /// and unique by name (set() maintains the invariant). The recognized
  /// names are documented at config().
  std::vector<std::pair<std::string, double>> knobs;

  /// Sets (or overwrites) one knob; returns *this for chaining.
  WorldSpec& set(std::string_view name, double value);

  /// The knob's value, or nullopt when unset.
  std::optional<double> knob(std::string_view name) const;

  /// Canonical little-endian serialization: version, kind, seed, scale
  /// (IEEE-754 bits), scenario, then the sorted knobs. Field order and
  /// widths are frozen — changing them is a kWorldSpecVersion bump.
  std::vector<std::uint8_t> canonical_bytes() const;

  /// FNV-1a-64 over canonical_bytes(): the content address.
  std::uint64_t fingerprint() const;

  /// Human-readable "C s42 x0.40 detection[...]" label for logs.
  std::string label() const;

  /// Materializes the engine configuration: dataset_config(kind, seed,
  /// scale) plus the knobs, applied in a fixed documented order.
  /// Recognized knobs (any other name throws std::invalid_argument):
  ///   builder               0 = GBT, 1 = legacy coin-age priority
  ///                         (applied to every pool)
  ///   genesis_height        overrides EngineConfig::genesis_height
  ///   scam                  0 disables the planted scam window
  ///   self_interest_per_block  WorkloadConfig::self_interest_per_block
  ///   selfish               0 clears every pool's selfish flag and
  ///                         collusion (accelerates_for) list
  ///   propagation_exclusion 0/1 -> EngineConfig::propagation_exclusion
  ///   age_weight_per_hour   aging bonus on every pool
  ///   clear_bursts          1 drops all workload burst events
  ///   utilization           base_tx_per_second =
  ///                         rate_for_utilization(config, value)
  ///   anchor_multiplier     scales urgent/normal/patient fee anchors
  ///   evasion_theta         converts every selfish pool to an evasive
  ///                         one (selfish off, collusion cleared,
  ///                         PoolSpec::evasion_theta = value); 0 is
  ///                         byte-identical to selfish=0, 1 boosts like
  ///                         full self-interest
  ///   withhold_delay_s      selfish/evasive pools withhold published
  ///                         blocks by this many seconds (0 = honest)
  ///   fair_queue            1 -> FIFO-above-floor on every pool
  ///   fee_only              1 -> zero-subsidy (fee-only) coinbase
  EngineConfig config() const;

  bool operator==(const WorldSpec&) const = default;
};

/// The unmodified data set: scenario "baseline", no knobs. All benches
/// that consume a plain make_dataset() world use this constructor so
/// their fingerprints — and hence their cached worlds — coincide.
WorldSpec baseline_spec(DatasetKind kind, std::uint64_t seed, double scale);

}  // namespace cn::sim

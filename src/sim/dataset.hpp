// Builders for the paper's three data sets (Table 1), scaled down so a
// laptop can regenerate them in seconds:
//
//   A — Feb 20 - Mar 13, 2019; default full node (1 sat/vB floor);
//       3,119 blocks. Used for congestion, fee/delay and pairwise
//       violation analyses (§4).
//   B — June 2019; permissive node (no fee floor, sees zero-fee txs);
//       4,520 blocks; includes the late-June congestion surges (Fig 9).
//   C — calendar year 2020; all 53,214 blocks; the behavioural audit
//       (§4.2.2, §5): selfish pools, ViaBTC's collusion, acceleration
//       services, the July Twitter-scam window, sporadic low-fee
//       inclusion by F2Pool/ViaBTC/BTC.com, and ~1.3% unattributable
//       blocks.
//
// `scale` multiplies the simulated duration (scale = 1 is the scaled-down
// default documented in DESIGN.md; raising it grows every count roughly
// linearly). Pool hash-rate profiles copy Figure 2.
#pragma once

#include "sim/engine.hpp"

namespace cn::sim {

enum class DatasetKind { kA, kB, kC };

/// Pool profiles per data set (hash shares sum to ~100; an "anonymous"
/// pseudo-pool models the paper's unidentified blocks).
std::vector<PoolSpec> paper_pools_a();
std::vector<PoolSpec> paper_pools_b();
std::vector<PoolSpec> paper_pools_c();

/// Fully-configured engine configs. Defaults (scale = 1.0):
/// A ~500 blocks, B ~580 blocks (with surge bursts), C ~1450 blocks
/// (with scam window and all planted behaviours).
EngineConfig dataset_config(DatasetKind kind, std::uint64_t seed, double scale = 1.0);

/// Convenience: configure + run.
SimResult make_dataset(DatasetKind kind, std::uint64_t seed, double scale = 1.0);

/// Rewrites every pool in @p config to use the given base builder —
/// used to recreate the pre-April-2016 era (coin-age priority) for the
/// Figure 1 contrast.
void set_all_builders(EngineConfig& config, BuilderKind kind);

/// Arrival rate that loads the chain at @p utilization of its steady-state
/// capacity (txs/s), given the config's block budget and interval.
double rate_for_utilization(const EngineConfig& config, double utilization);

}  // namespace cn::sim

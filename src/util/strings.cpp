#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>

namespace cn {

std::string with_commas(std::uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t first_group = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first_group) % 3 == 0 && i >= first_group) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string with_commas(std::int64_t n) {
  if (n < 0) return "-" + with_commas(static_cast<std::uint64_t>(-n));
  return with_commas(static_cast<std::uint64_t>(n));
}

std::string fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string percent(double fraction, int decimals) {
  return fixed(fraction * 100.0, decimals) + "%";
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool contains_icase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  const auto lower = [](char c) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  };
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    bool match = true;
    for (std::size_t j = 0; j < needle.size(); ++j) {
      if (lower(haystack[i + j]) != lower(needle[j])) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

std::string pad_left(std::string_view s, std::size_t width) {
  std::string out;
  if (s.size() < width) out.assign(width - s.size(), ' ');
  out.append(s);
  return out;
}

std::string pad_right(std::string_view s, std::size_t width) {
  std::string out(s);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

}  // namespace cn

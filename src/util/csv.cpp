#include "util/csv.hpp"

#include "util/strings.hpp"

namespace cn {

std::string csv_escape(std::string_view v) {
  const bool needs_quotes =
      v.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(v);
  std::string out;
  out.reserve(v.size() + 2);
  out.push_back('"');
  for (char c : v) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

CsvWriter::CsvWriter(const std::string& path) : out_(path) {}

void CsvWriter::separator() {
  if (row_started_) out_ << ',';
  row_started_ = true;
}

CsvWriter& CsvWriter::field(std::string_view v) {
  separator();
  out_ << csv_escape(v);
  return *this;
}

CsvWriter& CsvWriter::field(double v, int decimals) {
  separator();
  out_ << fixed(v, decimals);
  return *this;
}

CsvWriter& CsvWriter::field(std::int64_t v) {
  separator();
  out_ << v;
  return *this;
}

CsvWriter& CsvWriter::field(std::uint64_t v) {
  separator();
  out_ << v;
  return *this;
}

void CsvWriter::end_row() {
  out_ << '\n';
  row_started_ = false;
}

void CsvWriter::header(const std::vector<std::string>& names) {
  for (const auto& n : names) field(n);
  end_row();
}

bool CsvWriter::close() {
  if (closed_) return closed_ok_;
  closed_ = true;
  out_.flush();
  closed_ok_ = out_.good();
  out_.close();
  closed_ok_ = closed_ok_ && !out_.fail();
  return closed_ok_;
}

CsvReader::CsvReader(const std::string& path) : in_(path) {}

bool CsvReader::next_row(std::vector<std::string>& fields) {
  fields.clear();
  truncated_ = false;
  if (!in_ || in_.peek() == std::char_traits<char>::eof()) return false;
  record_line_ = cur_line_;

  std::string field;
  bool in_quotes = false;
  bool saw_anything = false;
  int c;
  while ((c = in_.get()) != std::char_traits<char>::eof()) {
    saw_anything = true;
    const char ch = static_cast<char>(c);
    if (ch == '\n') ++cur_line_;
    if (in_quotes) {
      if (ch == '"') {
        if (in_.peek() == '"') {
          field.push_back('"');
          in_.get();
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(ch);
      }
      continue;
    }
    if (ch == '"') {
      in_quotes = true;
    } else if (ch == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (ch == '\n') {
      fields.push_back(std::move(field));
      return true;
    } else if (ch == '\r') {
      // swallow (handles CRLF)
    } else {
      field.push_back(ch);
    }
  }
  if (saw_anything) {
    // Last record without a trailing newline — or a truncated file that
    // ends mid-quote, which callers can distinguish via truncated().
    truncated_ = in_quotes;
    fields.push_back(std::move(field));
    return true;
  }
  return false;
}

}  // namespace cn

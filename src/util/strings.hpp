// Small string helpers shared by report emitters and parsers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cn {

/// Formats a count with thousands separators, e.g. 1234567 -> "1,234,567".
std::string with_commas(std::uint64_t n);
std::string with_commas(std::int64_t n);

/// Fixed-precision decimal formatting (no locale dependence).
std::string fixed(double value, int decimals);

/// Formats a fraction as a percentage string, e.g. 0.1234, 2 -> "12.34%".
std::string percent(double fraction, int decimals = 2);

/// Splits on a single character; keeps empty fields.
std::vector<std::string_view> split(std::string_view s, char sep);

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// True if @p s begins with @p prefix.
bool starts_with(std::string_view s, std::string_view prefix);

/// Case-insensitive ASCII substring search.
bool contains_icase(std::string_view haystack, std::string_view needle);

/// Left/right padding to a minimum width (spaces).
std::string pad_left(std::string_view s, std::size_t width);
std::string pad_right(std::string_view s, std::size_t width);

}  // namespace cn

#include "util/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <memory>

#include "obs/registry.hpp"

namespace cn::util {

namespace {

struct PoolMetrics {
  obs::Counter workers_spawned{"util.thread_pool.workers_spawned"};
  obs::Counter tasks_submitted{"util.thread_pool.tasks_submitted"};
  obs::Counter tasks_inline{"util.thread_pool.tasks_inline"};
  obs::Counter idle_ns{"util.thread_pool.idle_ns"};
  obs::Histogram queue_depth{"util.thread_pool.queue_depth",
                             obs::depth_buckets()};
  obs::Histogram task_seconds{"util.thread_pool.task_seconds",
                              obs::latency_seconds_buckets()};
};

PoolMetrics& metrics() {
  static PoolMetrics* m = new PoolMetrics();  // interned once per process
  return *m;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

unsigned resolve_threads(unsigned requested) noexcept {
  if (requested != 0) return requested;
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned lanes = resolve_threads(threads);
  workers_.reserve(lanes - 1);
  for (unsigned i = 0; i + 1 < lanes; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  metrics().workers_spawned.add(workers_.size());
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  PoolMetrics& m = metrics();
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      const auto idle_start = std::chrono::steady_clock::now();
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      m.idle_ns.add(static_cast<std::uint64_t>(seconds_since(idle_start) * 1e9));
      // Drain the queue even when stopping so ~ThreadPool never drops
      // submitted work.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    const auto t0 = std::chrono::steady_clock::now();
    task();
    m.task_seconds.observe(seconds_since(t0));
  }
}

void ThreadPool::submit(std::function<void()> task) {
  PoolMetrics& m = metrics();
  if (workers_.empty()) {
    m.tasks_inline.add();
    task();
    return;
  }
  std::size_t depth;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    depth = queue_.size();
  }
  m.tasks_submitted.add();
  m.queue_depth.observe(static_cast<double>(depth));
  wake_.notify_one();
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    // Inline path: exceptions propagate directly — there is no shared
    // state a concurrent helper could still be reading.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  struct Shared {
    std::atomic<std::size_t> next{0};
    std::atomic<unsigned> pending{0};
    std::atomic<bool> failed{false};
    std::mutex mutex;
    std::condition_variable done;
    std::exception_ptr first_error;  // guarded by mutex
  };
  auto shared = std::make_shared<Shared>();
  const unsigned helpers = static_cast<unsigned>(
      std::min<std::size_t>(workers_.size(), n - 1));
  shared->pending.store(helpers, std::memory_order_relaxed);

  // Claims indices until exhausted or a failure is flagged; records the
  // first exception. Shared by helpers and the calling thread so the
  // failure semantics cannot diverge between them.
  const auto drain = [n](Shared& s, const std::function<void(std::size_t)>& f) {
    std::size_t i;
    while ((i = s.next.fetch_add(1, std::memory_order_relaxed)) < n) {
      if (s.failed.load(std::memory_order_acquire)) return;
      try {
        f(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(s.mutex);
        if (!s.first_error) s.first_error = std::current_exception();
        s.failed.store(true, std::memory_order_release);
        return;
      }
    }
  };

  for (unsigned t = 0; t < helpers; ++t) {
    // fn outlives the tasks: the caller ALWAYS blocks below until
    // pending == 0 — including when its own fn(i) threw — and every
    // helper touches fn only before decrementing pending.
    submit([shared, &fn, drain] {
      drain(*shared, fn);
      if (shared->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(shared->mutex);
        shared->done.notify_all();
      }
    });
  }

  drain(*shared, fn);

  std::unique_lock<std::mutex> lock(shared->mutex);
  shared->done.wait(lock, [&] {
    return shared->pending.load(std::memory_order_acquire) == 0;
  });
  if (shared->first_error) std::rethrow_exception(shared->first_error);
}

}  // namespace cn::util

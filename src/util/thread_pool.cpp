#include "util/thread_pool.hpp"

#include <algorithm>
#include <memory>

namespace cn::util {

unsigned resolve_threads(unsigned requested) noexcept {
  if (requested != 0) return requested;
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned lanes = resolve_threads(threads);
  workers_.reserve(lanes - 1);
  for (unsigned i = 0; i + 1 < lanes; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain the queue even when stopping so ~ThreadPool never drops
      // submitted work.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  struct Shared {
    std::atomic<std::size_t> next{0};
    std::atomic<unsigned> pending{0};
    std::mutex mutex;
    std::condition_variable done;
  };
  auto shared = std::make_shared<Shared>();
  const unsigned helpers = static_cast<unsigned>(
      std::min<std::size_t>(workers_.size(), n - 1));
  shared->pending.store(helpers, std::memory_order_relaxed);

  for (unsigned t = 0; t < helpers; ++t) {
    // fn outlives the tasks: the caller blocks below until pending == 0,
    // and every helper touches fn only before decrementing pending.
    submit([shared, n, &fn] {
      std::size_t i;
      while ((i = shared->next.fetch_add(1, std::memory_order_relaxed)) < n) {
        fn(i);
      }
      if (shared->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(shared->mutex);
        shared->done.notify_all();
      }
    });
  }

  std::size_t i;
  while ((i = shared->next.fetch_add(1, std::memory_order_relaxed)) < n) fn(i);

  std::unique_lock<std::mutex> lock(shared->mutex);
  shared->done.wait(lock, [&] {
    return shared->pending.load(std::memory_order_acquire) == 0;
  });
}

}  // namespace cn::util

// Deterministic pseudo-random number generation for the simulator.
//
// We implement xoshiro256** (Blackman & Vigna) from scratch rather than
// relying on std::mt19937_64 so that streams are cheap to split (one
// independent stream per subsystem) and results are reproducible across
// standard-library implementations. Distribution sampling is also
// implemented here because libstdc++/libc++ distributions are not
// bit-reproducible across platforms.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

namespace cn {

/// xoshiro256** 1.0 generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds from a single 64-bit value via SplitMix64 (the reference
  /// recommendation for initializing xoshiro state).
  explicit Rng(std::uint64_t seed) noexcept;

  /// Derives an independent, deterministic stream for subsystem @p label.
  /// Two distinct labels yield streams that do not overlap in practice.
  Rng fork(std::string_view label) const noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  std::uint64_t next() noexcept;
  result_type operator()() noexcept { return next(); }

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's unbiased
  /// multiply-shift rejection method.
  std::uint64_t uniform_below(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Bernoulli trial with success probability @p p (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Standard normal via Marsaglia polar method.
  double normal() noexcept;
  double normal(double mean, double stddev) noexcept;

  /// Log-normal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma) noexcept;

  /// Exponential with the given rate (mean 1/rate). Requires rate > 0.
  double exponential(double rate) noexcept;

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64).
  std::uint64_t poisson(double mean) noexcept;

  /// Pareto (type I) with scale x_m > 0 and shape alpha > 0; heavy-tailed
  /// samples >= x_m.
  double pareto(double x_m, double alpha) noexcept;

  /// Picks an index in [0, weights.size()) proportionally to weights.
  /// Requires at least one strictly positive weight.
  std::size_t weighted_index(const std::vector<double>& weights) noexcept;

  /// Fisher-Yates shuffle of [first, last) indices applied via callback-free
  /// in-place std::vector shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = uniform_below(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> s_{};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// SplitMix64 step; exposed for seeding and hashing helpers.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Stable 64-bit hash of a string (FNV-1a folded through SplitMix64).
/// Used to derive per-label RNG streams and synthetic identifiers.
std::uint64_t stable_hash64(std::string_view s) noexcept;

}  // namespace cn

// Allocation-recycling pools for the simulator's hot loops.
//
// The sharded engine moves typed messages (generated transactions,
// observer deliveries, mined-id lists) between lanes every barrier
// window. Allocating fresh vectors per window would put millions of
// small allocations on the critical path; these pools recycle fully
// constructed objects instead, so steady-state windows allocate nothing.
//
// Neither pool is thread-safe: each lane owns its pools, and hand-offs
// across lanes happen only at the window barrier (by std::move of whole
// buffers), which is exactly the engine's synchronization contract.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace cn::util {

/// Recycles std::vector buffers, preserving capacity across uses.
/// acquire() returns an empty vector (possibly with warm capacity);
/// release() takes a spent buffer back. Dropping a buffer instead of
/// releasing it is safe — the pool merely loses the warm capacity.
template <typename T>
class VectorPool {
 public:
  std::vector<T> acquire() {
    if (free_.empty()) return {};
    std::vector<T> v = std::move(free_.back());
    free_.pop_back();
    v.clear();
    return v;
  }

  void release(std::vector<T>&& v) { free_.push_back(std::move(v)); }

  std::size_t idle() const noexcept { return free_.size(); }

 private:
  std::vector<std::vector<T>> free_;
};

/// Slab-backed object pool: objects are default-constructed once per
/// slab slot and handed out via a free list, so acquire/release are
/// pointer pushes with no heap traffic after warm-up. Objects are
/// *reused, not reset* — callers must overwrite what they read.
template <typename T, std::size_t kSlabSize = 256>
class ObjectPool {
 public:
  ObjectPool() = default;
  ObjectPool(const ObjectPool&) = delete;
  ObjectPool& operator=(const ObjectPool&) = delete;

  /// Destroys every slot (in use or free): outstanding pointers must not
  /// be dereferenced after the pool dies.
  ~ObjectPool() {
    for (auto& slab : slabs_)
      for (std::size_t i = 0; i < kSlabSize; ++i)
        reinterpret_cast<T*>(&slab[i].storage)->~T();
  }

  T* acquire() {
    if (free_.empty()) grow();
    T* p = free_.back();
    free_.pop_back();
    return p;
  }

  void release(T* p) { free_.push_back(p); }

  /// Objects constructed so far (all slabs, in use or free).
  std::size_t capacity() const noexcept { return slabs_.size() * kSlabSize; }

 private:
  void grow() {
    slabs_.push_back(std::make_unique_for_overwrite<Slot[]>(kSlabSize));
    Slot* slab = slabs_.back().get();
    free_.reserve(free_.size() + kSlabSize);
    for (std::size_t i = 0; i < kSlabSize; ++i) {
      new (&slab[i].storage) T();
      free_.push_back(reinterpret_cast<T*>(&slab[i].storage));
    }
  }

  struct Slot {
    alignas(T) unsigned char storage[sizeof(T)];
  };

  std::vector<std::unique_ptr<Slot[]>> slabs_;
  std::vector<T*> free_;
};

/// Standard-library-compatible arena allocator: single-object
/// allocations (node-based container nodes — the in-flight transaction
/// map's bread and butter) come from slab-carved free lists; array
/// allocations (hash bucket tables) fall through to operator new. The
/// arena lives as long as any copy of the allocator (shared state), so
/// containers can be moved/swapped freely. Not thread-safe, like the
/// pools above.
template <typename T, std::size_t kSlabBytes = 1 << 16>
class SlabAllocator {
  struct State {
    std::vector<std::unique_ptr<std::byte[]>> slabs;
    void* freelist = nullptr;
    std::size_t brk = kSlabBytes;  ///< carve offset into the newest slab

    static constexpr std::size_t slot_size() {
      return sizeof(T) < sizeof(void*) ? sizeof(void*) : sizeof(T);
    }

    void* pop() {
      if (freelist != nullptr) {
        void* p = freelist;
        freelist = *static_cast<void**>(p);
        return p;
      }
      if (brk + slot_size() > kSlabBytes) {
        slabs.push_back(std::make_unique<std::byte[]>(kSlabBytes));
        brk = 0;
      }
      void* p = slabs.back().get() + brk;
      brk += slot_size();
      return p;
    }

    void push(void* p) {
      *static_cast<void**>(p) = freelist;
      freelist = p;
    }
  };

 public:
  using value_type = T;
  /// Explicit rebind: allocator_traits cannot synthesize one because of
  /// the non-type kSlabBytes parameter.
  template <typename U>
  struct rebind {
    using other = SlabAllocator<U, kSlabBytes>;
  };

  SlabAllocator() : state_(std::make_shared<State>()) {}
  template <typename U, std::size_t B>
  explicit SlabAllocator(const SlabAllocator<U, B>&)
      : state_(std::make_shared<State>()) {}  // rebound: fresh arena
  SlabAllocator(const SlabAllocator&) = default;
  SlabAllocator& operator=(const SlabAllocator&) = default;

  T* allocate(std::size_t n) {
    if (n == 1) return static_cast<T*>(state_->pop());
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    if (n == 1) {
      state_->push(p);
    } else {
      ::operator delete(p);
    }
  }

  bool operator==(const SlabAllocator& o) const noexcept {
    return state_ == o.state_;
  }

 private:
  template <typename U, std::size_t B>
  friend class SlabAllocator;
  std::shared_ptr<State> state_;
};

}  // namespace cn::util

// A small fixed-size worker pool for deterministic fan-out.
//
// The audit pipeline parallelizes embarrassingly parallel stages (per-pool
// tests, bootstrap resampling, watched-address screens) without giving up
// reproducibility: tasks write into index-addressed result slots and every
// merge happens in index order, so the output is byte-identical whatever
// the thread count or scheduling. Work distribution is a shared atomic
// counter (no work stealing, no per-thread queues) — the simplest scheme
// that load-balances uneven task costs.
//
// ThreadPool(1) spawns no workers and runs everything inline on the
// calling thread, which keeps the serial path trivially identical.
//
// Exception safety: parallel_for / parallel_map capture the first
// exception any fn(i) throws (on a worker or the calling thread), keep
// draining the remaining indices, wait for every helper to finish, and
// rethrow in the caller — so a throwing fn can never unwind the caller
// while helpers still reference its stack frame. Fire-and-forget
// submit() tasks must not throw (nothing can receive the exception).
//
// Observability (DESIGN.md §10): the pool reports
//   util.thread_pool.workers_spawned / tasks_submitted / tasks_inline
//   counters, util.thread_pool.queue_depth (depth after each enqueue)
//   and .task_seconds (per dequeued task) histograms, and
//   .idle_seconds_total — time workers spent blocked waiting for work —
//   as a gauge-like counter in nanoseconds (idle_ns).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace cn::util {

/// Maps the user-facing thread knob to a concrete lane count:
/// 0 -> hardware concurrency (at least 1), anything else -> itself.
unsigned resolve_threads(unsigned requested) noexcept;

class ThreadPool {
 public:
  /// @p threads — total execution lanes including the caller's thread
  /// during parallel_for; 0 resolves to hardware concurrency, 1 runs
  /// everything inline (no workers are spawned).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Execution lanes available to parallel_for (workers + caller).
  unsigned threads() const noexcept {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Enqueues a fire-and-forget task. Tasks must not throw (there is no
  /// caller left to receive the exception; a throwing submitted task
  /// terminates the process). With no workers (threads() == 1) the task
  /// runs inline. Tasks still queued at destruction time are drained,
  /// never dropped.
  void submit(std::function<void()> task);

  /// Runs fn(i) for every i in [0, n), distributing indices over the
  /// workers plus the calling thread; returns when all n calls finished.
  /// fn must be safe to invoke concurrently on distinct indices. If one
  /// or more fn(i) throw, every index is still visited or abandoned
  /// deterministically (indices claimed after the first failure are
  /// skipped), all helpers quiesce, and the first captured exception is
  /// rethrown here. Not reentrant from inside a pool task.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// parallel_for that collects fn(i) into a vector in index order. The
  /// result is byte-identical to the serial loop regardless of threads().
  template <typename Fn>
  auto parallel_map(std::size_t n, Fn&& fn)
      -> std::vector<std::decay_t<std::invoke_result_t<Fn&, std::size_t>>> {
    using T = std::decay_t<std::invoke_result_t<Fn&, std::size_t>>;
    std::vector<T> out(n);
    parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
};

}  // namespace cn::util

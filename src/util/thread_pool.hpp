// A small fixed-size worker pool for deterministic fan-out.
//
// The audit pipeline parallelizes embarrassingly parallel stages (per-pool
// tests, bootstrap resampling, watched-address screens) without giving up
// reproducibility: tasks write into index-addressed result slots and every
// merge happens in index order, so the output is byte-identical whatever
// the thread count or scheduling. Work distribution is a shared atomic
// counter (no work stealing, no per-thread queues) — the simplest scheme
// that load-balances uneven task costs.
//
// ThreadPool(1) spawns no workers and runs everything inline on the
// calling thread, which keeps the serial path trivially identical.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace cn::util {

/// Maps the user-facing thread knob to a concrete lane count:
/// 0 -> hardware concurrency (at least 1), anything else -> itself.
unsigned resolve_threads(unsigned requested) noexcept;

class ThreadPool {
 public:
  /// @p threads — total execution lanes including the caller's thread
  /// during parallel_for; 0 resolves to hardware concurrency, 1 runs
  /// everything inline (no workers are spawned).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Execution lanes available to parallel_for (workers + caller).
  unsigned threads() const noexcept {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Enqueues a fire-and-forget task. Tasks must not throw. With no
  /// workers (threads() == 1) the task runs inline.
  void submit(std::function<void()> task);

  /// Runs fn(i) for every i in [0, n), distributing indices over the
  /// workers plus the calling thread; returns when all n calls finished.
  /// fn must not throw and must be safe to invoke concurrently on
  /// distinct indices. Not reentrant from inside a pool task.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// parallel_for that collects fn(i) into a vector in index order. The
  /// result is byte-identical to the serial loop regardless of threads().
  template <typename Fn>
  auto parallel_map(std::size_t n, Fn&& fn)
      -> std::vector<std::decay_t<std::invoke_result_t<Fn&, std::size_t>>> {
    using T = std::decay_t<std::invoke_result_t<Fn&, std::size_t>>;
    std::vector<T> out(n);
    parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
};

}  // namespace cn::util

// Lightweight runtime-checked assertions that stay enabled in release builds.
//
// The simulator and the audit toolkit are deterministic; invariant failures
// indicate programming errors, so we terminate loudly rather than limp along
// with corrupted analysis results.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace cn {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "chainneutrality: assertion failed: %s (%s:%d)\n", expr, file, line);
  std::abort();
}

}  // namespace cn

#define CN_ASSERT(expr) \
  ((expr) ? static_cast<void>(0) : ::cn::assert_fail(#expr, __FILE__, __LINE__))

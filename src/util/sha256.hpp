// From-scratch SHA-256 (FIPS 180-4). Used to derive transaction ids and
// wallet addresses deterministically from simulation state, exactly as
// Bitcoin derives txids from serialized transactions (double SHA-256).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace cn {

using Sha256Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  Sha256() noexcept { reset(); }

  /// Resets to the initial state; the hasher can be reused after finalize().
  void reset() noexcept;

  /// Absorbs @p data into the hash state.
  Sha256& update(std::span<const std::uint8_t> data) noexcept;
  Sha256& update(std::string_view data) noexcept;

  /// Pads, finalizes, and returns the digest. The hasher must be reset()
  /// before further use.
  Sha256Digest finalize() noexcept;

 private:
  void compress(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// One-shot SHA-256.
Sha256Digest sha256(std::span<const std::uint8_t> data) noexcept;
Sha256Digest sha256(std::string_view data) noexcept;

/// Bitcoin's HASH256: SHA-256 applied twice.
Sha256Digest sha256d(std::span<const std::uint8_t> data) noexcept;
Sha256Digest sha256d(std::string_view data) noexcept;

}  // namespace cn

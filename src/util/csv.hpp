// Minimal CSV writer used by benches and examples to dump series
// (CDFs, time series, tables) that plot scripts can consume.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace cn {

/// Streams rows to a CSV file. Fields containing separators, quotes, or
/// newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens @p path for writing (truncates). ok() reports failure instead of
  /// throwing so benches can degrade to stdout-only output.
  explicit CsvWriter(const std::string& path);

  /// True while the stream is healthy. Reflects accumulated state: once a
  /// write fails (disk full, closed descriptor) this stays false. Note that
  /// ofstream buffering can defer the failure until flush — close() is the
  /// authoritative end-of-export check.
  bool ok() const noexcept { return out_.good(); }

  CsvWriter& field(std::string_view v);
  CsvWriter& field(double v, int decimals = 6);
  CsvWriter& field(std::int64_t v);
  CsvWriter& field(std::uint64_t v);

  /// Ends the current row.
  void end_row();

  /// Convenience: writes a full header row.
  void header(const std::vector<std::string>& names);

  /// Flushes and closes the file; returns false if any write (including
  /// the final flush) failed. Safe to call more than once.
  bool close();

 private:
  std::ofstream out_;
  bool row_started_ = false;
  bool closed_ok_ = false;
  bool closed_ = false;

  void separator();
};

/// Escapes a single CSV field (exposed for testing).
std::string csv_escape(std::string_view v);

/// Streaming CSV reader (RFC 4180: quoted fields, doubled quotes,
/// embedded newlines). Complements CsvWriter for data-set import.
class CsvReader {
 public:
  explicit CsvReader(const std::string& path);

  bool ok() const noexcept { return static_cast<bool>(in_); }

  /// Reads the next record into @p fields (cleared first). Returns false
  /// at end of input.
  bool next_row(std::vector<std::string>& fields);

  /// 1-based physical line on which the record last returned by
  /// next_row() began (quoted fields may span further lines).
  std::size_t line() const noexcept { return record_line_; }

  /// True if the record last returned by next_row() ended at EOF inside
  /// an unterminated quoted field (a truncated file).
  bool truncated() const noexcept { return truncated_; }

 private:
  std::ifstream in_;
  std::size_t cur_line_ = 1;
  std::size_t record_line_ = 0;
  bool truncated_ = false;
};

}  // namespace cn

#include "util/sha256.hpp"

#include <bit>
#include <cstring>

#if defined(__x86_64__) && defined(__GNUC__)
#define CN_SHA256_X86 1
#include <cpuid.h>
#include <immintrin.h>
#endif

namespace cn {

namespace {

constexpr std::array<std::uint32_t, 64> kK = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::uint32_t rotr(std::uint32_t x, int n) noexcept { return std::rotr(x, n); }

std::uint32_t load_be32(const std::uint8_t* p) noexcept {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

void store_be32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

#if CN_SHA256_X86

// SHA-NI compression: identical output to the scalar path, ~5-10x faster.
// Standard Intel SHA-extensions schedule (two 4-round batches per group).
__attribute__((target("sha,sse4.1")))
void compress_shani(std::uint32_t* state, const std::uint8_t* data,
                    std::size_t blocks) noexcept {
  const __m128i kMask =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i s1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);       // CDAB
  s1 = _mm_shuffle_epi32(s1, 0x1B);         // EFGH
  __m128i s0 = _mm_alignr_epi8(tmp, s1, 8);  // ABEF
  s1 = _mm_blend_epi16(s1, tmp, 0xF0);       // CDGH

  while (blocks > 0) {
    const __m128i abef_save = s0;
    const __m128i cdgh_save = s1;
    __m128i msg, msg0, msg1, msg2, msg3;

    // Rounds 0-3.
    msg = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 0));
    msg0 = _mm_shuffle_epi8(msg, kMask);
    msg = _mm_add_epi32(
        msg0, _mm_set_epi64x(0xE9B5DBA5B5C0FBCFULL, 0x71374491428A2F98ULL));
    s1 = _mm_sha256rnds2_epu32(s1, s0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    s0 = _mm_sha256rnds2_epu32(s0, s1, msg);

    // Rounds 4-7.
    msg1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16));
    msg1 = _mm_shuffle_epi8(msg1, kMask);
    msg = _mm_add_epi32(
        msg1, _mm_set_epi64x(0xAB1C5ED5923F82A4ULL, 0x59F111F13956C25BULL));
    s1 = _mm_sha256rnds2_epu32(s1, s0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    s0 = _mm_sha256rnds2_epu32(s0, s1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 8-11.
    msg2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32));
    msg2 = _mm_shuffle_epi8(msg2, kMask);
    msg = _mm_add_epi32(
        msg2, _mm_set_epi64x(0x550C7DC3243185BEULL, 0x12835B01D807AA98ULL));
    s1 = _mm_sha256rnds2_epu32(s1, s0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    s0 = _mm_sha256rnds2_epu32(s0, s1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 12-15.
    msg3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48));
    msg3 = _mm_shuffle_epi8(msg3, kMask);
    msg = _mm_add_epi32(
        msg3, _mm_set_epi64x(0xC19BF1749BDC06A7ULL, 0x80DEB1FE72BE5D74ULL));
    s1 = _mm_sha256rnds2_epu32(s1, s0, msg);
    tmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, tmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    s0 = _mm_sha256rnds2_epu32(s0, s1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 16-19.
    msg = _mm_add_epi32(
        msg0, _mm_set_epi64x(0x240CA1CC0FC19DC6ULL, 0xEFBE4786E49B69C1ULL));
    s1 = _mm_sha256rnds2_epu32(s1, s0, msg);
    tmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, tmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    s0 = _mm_sha256rnds2_epu32(s0, s1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 20-23.
    msg = _mm_add_epi32(
        msg1, _mm_set_epi64x(0x76F988DA5CB0A9DCULL, 0x4A7484AA2DE92C6FULL));
    s1 = _mm_sha256rnds2_epu32(s1, s0, msg);
    tmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, tmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    s0 = _mm_sha256rnds2_epu32(s0, s1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 24-27.
    msg = _mm_add_epi32(
        msg2, _mm_set_epi64x(0xBF597FC7B00327C8ULL, 0xA831C66D983E5152ULL));
    s1 = _mm_sha256rnds2_epu32(s1, s0, msg);
    tmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, tmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    s0 = _mm_sha256rnds2_epu32(s0, s1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 28-31.
    msg = _mm_add_epi32(
        msg3, _mm_set_epi64x(0x1429296706CA6351ULL, 0xD5A79147C6E00BF3ULL));
    s1 = _mm_sha256rnds2_epu32(s1, s0, msg);
    tmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, tmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    s0 = _mm_sha256rnds2_epu32(s0, s1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 32-35.
    msg = _mm_add_epi32(
        msg0, _mm_set_epi64x(0x53380D134D2C6DFCULL, 0x2E1B213827B70A85ULL));
    s1 = _mm_sha256rnds2_epu32(s1, s0, msg);
    tmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, tmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    s0 = _mm_sha256rnds2_epu32(s0, s1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 36-39.
    msg = _mm_add_epi32(
        msg1, _mm_set_epi64x(0x92722C8581C2C92EULL, 0x766A0ABB650A7354ULL));
    s1 = _mm_sha256rnds2_epu32(s1, s0, msg);
    tmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, tmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    s0 = _mm_sha256rnds2_epu32(s0, s1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 40-43.
    msg = _mm_add_epi32(
        msg2, _mm_set_epi64x(0xC76C51A3C24B8B70ULL, 0xA81A664BA2BFE8A1ULL));
    s1 = _mm_sha256rnds2_epu32(s1, s0, msg);
    tmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, tmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    s0 = _mm_sha256rnds2_epu32(s0, s1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 44-47.
    msg = _mm_add_epi32(
        msg3, _mm_set_epi64x(0x106AA070F40E3585ULL, 0xD6990624D192E819ULL));
    s1 = _mm_sha256rnds2_epu32(s1, s0, msg);
    tmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, tmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    s0 = _mm_sha256rnds2_epu32(s0, s1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 48-51.
    msg = _mm_add_epi32(
        msg0, _mm_set_epi64x(0x34B0BCB52748774CULL, 0x1E376C0819A4C116ULL));
    s1 = _mm_sha256rnds2_epu32(s1, s0, msg);
    tmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, tmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    s0 = _mm_sha256rnds2_epu32(s0, s1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 52-55.
    msg = _mm_add_epi32(
        msg1, _mm_set_epi64x(0x682E6FF35B9CCA4FULL, 0x4ED8AA4A391C0CB3ULL));
    s1 = _mm_sha256rnds2_epu32(s1, s0, msg);
    tmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, tmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    s0 = _mm_sha256rnds2_epu32(s0, s1, msg);

    // Rounds 56-59.
    msg = _mm_add_epi32(
        msg2, _mm_set_epi64x(0x8CC7020884C87814ULL, 0x78A5636F748F82EEULL));
    s1 = _mm_sha256rnds2_epu32(s1, s0, msg);
    tmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, tmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    s0 = _mm_sha256rnds2_epu32(s0, s1, msg);

    // Rounds 60-63.
    msg = _mm_add_epi32(
        msg3, _mm_set_epi64x(0xC67178F2BEF9A3F7ULL, 0xA4506CEB90BEFFFAULL));
    s1 = _mm_sha256rnds2_epu32(s1, s0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    s0 = _mm_sha256rnds2_epu32(s0, s1, msg);

    s0 = _mm_add_epi32(s0, abef_save);
    s1 = _mm_add_epi32(s1, cdgh_save);
    data += 64;
    --blocks;
  }

  tmp = _mm_shuffle_epi32(s0, 0x1B);        // FEBA
  s1 = _mm_shuffle_epi32(s1, 0xB1);         // DCHG
  s0 = _mm_blend_epi16(tmp, s1, 0xF0);      // DCBA
  s1 = _mm_alignr_epi8(s1, tmp, 8);         // HGFE

  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), s0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), s1);
}

bool detect_shani() noexcept {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid_max(0, nullptr) < 7) return false;
  __cpuid_count(7, 0, eax, ebx, ecx, edx);
  return (ebx & (1u << 29)) != 0;  // CPUID.7.0:EBX.SHA[29]
}

const bool kHaveShani = detect_shani();

#endif  // CN_SHA256_X86

}  // namespace

void Sha256::reset() noexcept {
  state_ = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
            0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  buffered_ = 0;
  total_bytes_ = 0;
}

void Sha256::compress(const std::uint8_t* block) noexcept {
#if CN_SHA256_X86
  if (kHaveShani) {
    compress_shani(state_.data(), block, 1);
    return;
  }
#endif
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) w[i] = load_be32(block + 4 * i);
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  std::uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];

  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = h + s1 + ch + kK[i] + w[i];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

Sha256& Sha256::update(std::span<const std::uint8_t> data) noexcept {
  total_bytes_ += data.size();
  std::size_t offset = 0;

  if (buffered_ > 0) {
    const std::size_t take = std::min(data.size(), buffer_.size() - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == buffer_.size()) {
      compress(buffer_.data());
      buffered_ = 0;
    }
  }

  if (const std::size_t whole = (data.size() - offset) / 64; whole > 0) {
#if CN_SHA256_X86
    if (kHaveShani) {
      compress_shani(state_.data(), data.data() + offset, whole);
      offset += whole * 64;
    }
#endif
    while (data.size() - offset >= 64) {
      compress(data.data() + offset);
      offset += 64;
    }
  }

  if (offset < data.size()) {
    buffered_ = data.size() - offset;
    std::memcpy(buffer_.data(), data.data() + offset, buffered_);
  }
  return *this;
}

Sha256& Sha256::update(std::string_view data) noexcept {
  return update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

Sha256Digest Sha256::finalize() noexcept {
  const std::uint64_t bit_len = total_bytes_ * 8;

  const std::uint8_t pad_byte = 0x80;
  update(std::span<const std::uint8_t>(&pad_byte, 1));
  const std::uint8_t zero = 0x00;
  while (buffered_ != 56) update(std::span<const std::uint8_t>(&zero, 1));

  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i)
    len_be[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  update(std::span<const std::uint8_t>(len_be, 8));

  Sha256Digest digest{};
  for (int i = 0; i < 8; ++i) store_be32(digest.data() + 4 * i, state_[i]);
  return digest;
}

Sha256Digest sha256(std::span<const std::uint8_t> data) noexcept {
  Sha256 h;
  h.update(data);
  return h.finalize();
}

Sha256Digest sha256(std::string_view data) noexcept {
  Sha256 h;
  h.update(data);
  return h.finalize();
}

Sha256Digest sha256d(std::span<const std::uint8_t> data) noexcept {
  const Sha256Digest first = sha256(data);
  return sha256(std::span<const std::uint8_t>(first.data(), first.size()));
}

Sha256Digest sha256d(std::string_view data) noexcept {
  const Sha256Digest first = sha256(data);
  return sha256(std::span<const std::uint8_t>(first.data(), first.size()));
}

}  // namespace cn

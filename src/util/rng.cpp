#include "util/rng.hpp"

#include <bit>
#include <cmath>

#include "util/assert.hpp"

namespace cn {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t stable_hash64(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;  // FNV prime
  }
  std::uint64_t state = h;
  return splitmix64(state);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng Rng::fork(std::string_view label) const noexcept {
  // Combine current state with the label hash; the fork is independent of
  // how many numbers the parent has drawn only through its current state,
  // which is exactly what we want for deterministic replay.
  std::uint64_t mix = stable_hash64(label);
  for (std::uint64_t word : s_) {
    std::uint64_t st = word ^ mix;
    mix = splitmix64(st);
  }
  return Rng(mix);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_below(std::uint64_t n) noexcept {
  CN_ASSERT(n > 0);
  // Lemire's method: multiply-shift with rejection in the low word.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = -n % n;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  CN_ASSERT(lo <= hi);
  const auto range =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next());  // full domain
  return lo + static_cast<std::int64_t>(uniform_below(range));
}

double Rng::uniform01() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Marsaglia polar method.
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double rate) noexcept {
  CN_ASSERT(rate > 0.0);
  double u;
  do {
    u = uniform01();
  } while (u == 0.0);
  return -std::log(u) / rate;
}

std::uint64_t Rng::poisson(double mean) noexcept {
  CN_ASSERT(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean < 64.0) {
    // Knuth's multiplication method.
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform01();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction; adequate for workload
  // generation at large means.
  const double x = normal(mean, std::sqrt(mean));
  return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

double Rng::pareto(double x_m, double alpha) noexcept {
  CN_ASSERT(x_m > 0.0 && alpha > 0.0);
  double u;
  do {
    u = uniform01();
  } while (u == 0.0);
  return x_m / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) {
    CN_ASSERT(w >= 0.0);
    total += w;
  }
  CN_ASSERT(total > 0.0);
  double target = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numerical edge: land on last positive weight
}

}  // namespace cn

// Simulation time. All simulator and audit code uses seconds since the
// simulation epoch as a signed 64-bit count; there is no wall-clock
// dependence anywhere (determinism requirement).
#pragma once

#include <cstdint>

namespace cn {

/// Seconds since the simulation epoch.
using SimTime = std::int64_t;

constexpr SimTime kSecond = 1;
constexpr SimTime kMinute = 60;
constexpr SimTime kHour = 60 * kMinute;
constexpr SimTime kDay = 24 * kHour;
constexpr SimTime kWeek = 7 * kDay;

/// Bitcoin's target block interval.
constexpr SimTime kTargetBlockInterval = 10 * kMinute;

/// Mempool snapshot cadence used by the paper's observer node.
constexpr SimTime kSnapshotInterval = 15 * kSecond;

}  // namespace cn

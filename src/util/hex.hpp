// Hex encoding/decoding for byte spans (txids, wallet addresses, markers).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace cn {

/// Lower-case hex encoding of @p bytes (2 chars per byte).
std::string hex_encode(std::span<const std::uint8_t> bytes);

/// Decodes a lower- or upper-case hex string. Returns std::nullopt on odd
/// length or any non-hex character.
std::optional<std::vector<std::uint8_t>> hex_decode(std::string_view hex);

/// True if @p hex is non-empty, even-length, and all hex digits.
bool is_hex(std::string_view hex);

}  // namespace cn
